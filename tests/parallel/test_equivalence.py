"""Parallel/serial bit-identity: every policy, the fuzz corpus, and
defects crafted to straddle chunk boundaries.

The contract under test: for any input file and any ingest policy, the
chunk-parallel reader observable behaviour — frame bytes, quarantine
counts and samples, strict raises, mid-stream and end-of-file aborts —
equals the serial reader's exactly, at any worker count and for any
chunk placement.
"""

import numpy as np
import pytest

from repro.faults.corruption import RAS_DEFECT_CLASSES, LogCorruptor
from repro.logs import (
    IngestAbortError,
    IngestError,
    IngestPolicy,
    JobLog,
    RasLog,
    read_job_log,
    read_ras_log,
    write_job_log,
    write_ras_log,
)
from repro.parallel import parallel_read_ras_frame, scan_header
from repro.parallel.ingest import resolve_workers

from tests.logs.test_job import make_job
from tests.logs.test_ras import make_record

POLICIES = [
    pytest.param(IngestPolicy(mode="strict"), id="strict"),
    pytest.param(IngestPolicy(mode="quarantine"), id="quarantine"),
    pytest.param(IngestPolicy(mode="skip"), id="skip"),
    pytest.param(
        IngestPolicy(mode="quarantine", max_bad_records=5), id="max-records"
    ),
    pytest.param(
        IngestPolicy(mode="quarantine", max_bad_fraction=0.02), id="max-fraction"
    ),
]


@pytest.fixture(scope="module")
def ras_file(tmp_path_factory):
    records = [
        make_record(
            recid=i,
            t=1000.0 + 7.0 * i,
            severity=("FATAL" if i % 11 == 0 else "INFO"),
        )
        for i in range(1, 401)
    ]
    path = tmp_path_factory.mktemp("pareq") / "ras.log"
    write_ras_log(RasLog.from_records(records), path)
    return path


@pytest.fixture(scope="module")
def corrupted_ras(ras_file, tmp_path_factory):
    out = tmp_path_factory.mktemp("pareq") / "ras_bad.log"
    LogCorruptor(seed=3, rate=0.1, kind="ras").corrupt_file(ras_file, out)
    return out


@pytest.fixture(scope="module")
def corrupted_job(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("pareq")
    jobs = [
        make_job(job_id=i, start=1000.0 + 60.0 * i, end=1800.0 + 60.0 * i)
        for i in range(1, 201)
    ]
    clean = tmp / "job.log"
    write_job_log(JobLog.from_records(jobs), clean)
    out = tmp / "job_bad.log"
    LogCorruptor(seed=9, rate=0.1, kind="job").corrupt_file(clean, out)
    return out


def outcome(reader, path, policy, workers):
    """A fully comparable record of one read attempt."""
    try:
        log = reader(path, policy=policy, workers=workers)
    except IngestError as exc:
        return ("ingest_error", exc.line_no, exc.defect, exc.text)
    except IngestAbortError as exc:
        return (
            "abort",
            str(exc),
            exc.report.total_rows,
            exc.report.as_dict(),
        )
    report = log.quarantine
    rep_state = None
    if report is not None:
        rep_state = (
            report.total_rows,
            report.as_dict(),
            {
                d.value: [(r.line_no, r.defect, r.text) for r in recs]
                for d, recs in report.samples.items()
            },
        )
    cols = {
        name: (log.frame[name].dtype.str, log.frame[name].tolist())
        for name in log.frame.columns
    }
    return ("ok", cols, rep_state)


def assert_equivalent(reader, path, policy, workers=4):
    assert outcome(reader, path, policy, 1) == outcome(
        reader, path, policy, workers
    )


class TestPolicyMatrix:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_clean_ras(self, ras_file, policy):
        assert_equivalent(read_ras_log, ras_file, policy)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_corrupted_ras(self, corrupted_ras, policy):
        assert_equivalent(read_ras_log, corrupted_ras, policy)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_corrupted_job(self, corrupted_job, policy):
        assert_equivalent(read_job_log, corrupted_job, policy)

    @pytest.mark.parametrize(
        "cls", RAS_DEFECT_CLASSES, ids=lambda c: c.value
    )
    def test_each_defect_class_alone(self, ras_file, tmp_path, cls):
        out = tmp_path / "bad.log"
        result = LogCorruptor(
            seed=11, rate=0.05, kind="ras", classes=(cls,)
        ).corrupt_file(ras_file, out)
        assert result.num_injected > 0
        assert_equivalent(
            read_ras_log, out, IngestPolicy(mode="quarantine")
        )

    def test_worker_counts_all_agree(self, corrupted_ras):
        base = outcome(read_ras_log, corrupted_ras, "quarantine", 1)
        for workers in (2, 3, 5, 8):
            assert base == outcome(
                read_ras_log, corrupted_ras, "quarantine", workers
            )

    def test_auto_workers(self, ras_file):
        assert resolve_workers(0) >= 1
        assert_equivalent(read_ras_log, ras_file, "quarantine", workers=0)

    def test_negative_workers_rejected(self, ras_file):
        with pytest.raises(ValueError, match="non-negative"):
            read_ras_log(ras_file, policy="quarantine", workers=-1)


class TestDegenerateFiles:
    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.log"
        p.write_text("")
        assert_equivalent(read_ras_log, p, "quarantine")

    def test_header_only(self, ras_file, tmp_path):
        p = tmp_path / "header.log"
        p.write_text(ras_file.read_text().splitlines()[0] + "\n")
        assert_equivalent(read_ras_log, p, "quarantine")

    def test_wrong_header_raises_both_ways(self, tmp_path):
        p = tmp_path / "wrong.log"
        p.write_text("not:int|the:str|schema:str\n1|x|y\n")
        for workers in (1, 4):
            with pytest.raises(ValueError, match="unexpected RAS header"):
                read_ras_log(p, policy="quarantine", workers=workers)


def _bounds_after(path, split_rows):
    """Chunk bounds cutting the data region after the given row counts."""
    _, start = scan_header(path)
    raw = path.read_bytes()
    offsets = [start]
    pos = start
    while pos < len(raw):
        pos = raw.index(b"\n", pos) + 1
        offsets.append(pos)
    cuts = [start] + [offsets[k] for k in split_rows] + [len(raw)]
    return list(zip(cuts[:-1], cuts[1:]))


def _write_rows(tmp_path, recids, times):
    # RasLog.from_records sorts by (event_time, recid); boundary tests
    # need exact row placement, so build the frame in the given order
    from repro.frame import Frame
    from repro.logs.ras import RAS_COLUMNS

    n = len(recids)
    data = {
        "recid": np.array(recids, dtype=np.int64),
        "msg_id": np.array(["KERN_0802"] * n, dtype=object),
        "component": np.array(["KERNEL"] * n, dtype=object),
        "subcomponent": np.array(["_bgp_unit"] * n, dtype=object),
        "errcode": np.array(["KERN_PANIC"] * n, dtype=object),
        "severity": np.array(["FATAL"] * n, dtype=object),
        "event_time": np.array(times, dtype=np.float64),
        "location": np.array(["R00-M0"] * n, dtype=object),
        "serialnumber": np.array(["SN1"] * n, dtype=object),
        "message": np.array(["msg"] * n, dtype=object),
    }
    path = tmp_path / "crafted.log"
    write_ras_log(RasLog(Frame({c: data[c] for c in RAS_COLUMNS})), path)
    return path


class TestCrossChunkBoundaries:
    """Defects placed exactly on a chunk boundary by pinning the cuts."""

    def check(self, path, bounds, policy="quarantine"):
        from repro.logs.quarantine import coerce_policy

        serial = read_ras_log(path, policy=policy, workers=1)
        pol = coerce_policy(policy)
        report = pol.new_report(str(path))
        frame = parallel_read_ras_frame(
            path, policy=pol, report=report, workers=4, chunk_bounds=bounds
        )
        for col in serial.frame.columns:
            assert np.array_equal(serial.frame[col], frame[col]), col
        ser_rep = serial.quarantine
        assert ser_rep.total_rows == report.total_rows
        assert ser_rep.as_dict() == report.as_dict()
        assert {
            d: [(r.line_no, r.text) for r in recs]
            for d, recs in ser_rep.samples.items()
        } == {
            d: [(r.line_no, r.text) for r in recs]
            for d, recs in report.samples.items()
        }
        return frame, report

    def test_duplicate_recid_across_boundary(self, tmp_path):
        path = _write_rows(
            tmp_path, [1, 2, 3, 2, 4], [100.0, 107.0, 114.0, 121.0, 128.0]
        )
        frame, report = self.check(path, _bounds_after(path, [3]))
        assert frame["recid"].tolist() == [1, 2, 3, 4]
        assert report.as_dict() == {"duplicate_recid": 1}

    def test_out_of_order_across_boundary(self, tmp_path):
        path = _write_rows(
            tmp_path, [1, 2, 3, 4], [100.0, 110.0, 105.0, 120.0]
        )
        frame, report = self.check(path, _bounds_after(path, [2]))
        assert frame["recid"].tolist() == [1, 2, 4]
        assert report.as_dict() == {"out_of_order_time": 1}

    def test_rejected_duplicate_does_not_poison_time_order(self, tmp_path):
        """A cross-chunk duplicate's (large) time must not advance the
        accepted-time cursor: the row after it is in order serially and
        must stay accepted under any chunking."""
        path = _write_rows(
            tmp_path, [1, 2, 2, 3], [100.0, 110.0, 150.0, 120.0]
        )
        for splits in ([2], [2, 3], [1, 2, 3]):
            frame, report = self.check(path, _bounds_after(path, splits))
            assert frame["recid"].tolist() == [1, 2, 3]
            assert report.as_dict() == {"duplicate_recid": 1}

    def test_strict_raise_matches_serial_line(self, tmp_path):
        path = _write_rows(
            tmp_path, [1, 2, 2, 3], [100.0, 110.0, 150.0, 120.0]
        )
        with pytest.raises(IngestError) as serial_exc:
            read_ras_log(path, policy="strict", workers=1)
        from repro.logs.quarantine import coerce_policy

        pol = coerce_policy("strict")
        with pytest.raises(IngestError) as par_exc:
            parallel_read_ras_frame(
                path,
                policy=pol,
                report=pol.new_report(str(path)),
                workers=4,
                chunk_bounds=_bounds_after(path, [2]),
            )
        assert par_exc.value.line_no == serial_exc.value.line_no == 4
        assert par_exc.value.defect == serial_exc.value.defect
        assert par_exc.value.text == serial_exc.value.text


class TestAbortAtBoundaries:
    """``max_bad_records`` aborts crossed exactly at a chunk boundary.

    The abort must fire at the same record with the same report state
    whether the fatal defect is the first row of a chunk, the last row
    of the previous chunk, or mid-chunk — the merge replays defects in
    global line order with the serial running ``total_rows``.
    """

    #: recids [1,2,1,3,2,4]: duplicates at row indices 2 and 4; with
    #: max_bad_records=1 the second duplicate (line 6) is the abort
    ROWS = ([1, 2, 1, 3, 2, 4], [100.0, 107.0, 114.0, 121.0, 128.0, 135.0])

    def _abort_outcome_serial(self, path, policy):
        with pytest.raises(IngestAbortError) as exc:
            read_ras_log(path, policy=policy, workers=1)
        return self._exc_state(exc.value)

    def _abort_outcome_parallel(self, path, policy, bounds):
        report = policy.new_report(str(path))
        with pytest.raises(IngestAbortError) as exc:
            parallel_read_ras_frame(
                path, policy=policy, report=report, workers=4,
                chunk_bounds=bounds,
            )
        return self._exc_state(exc.value)

    @staticmethod
    def _exc_state(exc):
        rep = exc.report
        return (
            str(exc),
            rep.total_rows,
            rep.as_dict(),
            {
                d.value: [(r.line_no, r.defect, r.text) for r in recs]
                for d, recs in rep.samples.items()
            },
        )

    @pytest.mark.parametrize(
        "splits",
        [[4], [5], [2], [1, 4], [4, 5], [1, 2, 3, 4, 5]],
        ids=["fatal-starts-chunk", "fatal-ends-chunk", "mid-chunk",
             "both-dups-start-chunks", "fatal-alone", "one-row-chunks"],
    )
    def test_ras_abort_bit_identical(self, tmp_path, splits):
        path = _write_rows(tmp_path, *self.ROWS)
        policy = IngestPolicy(mode="quarantine", max_bad_records=1)
        serial = self._abort_outcome_serial(path, policy)
        bounds = _bounds_after(path, splits)
        assert self._abort_outcome_parallel(path, policy, bounds) == serial

    def test_ras_survives_when_under_limit(self, tmp_path):
        # same file, limit 2: no abort, and the quarantine report is
        # bit-identical with the fatal-free boundary placements
        path = _write_rows(tmp_path, *self.ROWS)
        policy = IngestPolicy(mode="quarantine", max_bad_records=2)
        base = outcome(read_ras_log, path, policy, 1)
        assert base[0] == "ok"
        assert outcome(read_ras_log, path, policy, 4) == base

    def _garbled_job_file(self, tmp_path, bad_rows):
        jobs = [
            make_job(job_id=i, start=1000.0 + 60.0 * i, end=1800.0 + 60.0 * i)
            for i in range(1, 21)
        ]
        path = tmp_path / "job.log"
        write_job_log(JobLog.from_records(jobs), path)
        lines = path.read_text().splitlines(keepends=True)
        for row in bad_rows:  # data row index -> physical line index row+1
            lines[row + 1] = "completely garbled, no delimiters here\n"
        path.write_text("".join(lines))
        return path

    @pytest.mark.parametrize("splits", [[7], [8], [3, 7], [7, 8]])
    def test_delim_abort_bit_identical(self, tmp_path, splits):
        from repro.frame.io import read_delimited
        from repro.parallel import parallel_read_delimited

        # bad data rows 3 and 7; limit 1 makes row 7 (line 9) the abort,
        # and the splits pin it onto every side of a chunk boundary
        path = self._garbled_job_file(tmp_path, bad_rows=[3, 7])
        policy = IngestPolicy(mode="quarantine", max_bad_records=1)

        report = policy.new_report(str(path))
        with pytest.raises(IngestAbortError) as serial_exc:
            read_delimited(path, policy=policy, report=report)
        serial = self._exc_state(serial_exc.value)

        par_report = policy.new_report(str(path))
        with pytest.raises(IngestAbortError) as par_exc:
            parallel_read_delimited(
                path, policy=policy, report=par_report, workers=4,
                chunk_bounds=_bounds_after(path, splits),
            )
        assert self._exc_state(par_exc.value) == serial

    def test_delim_defect_order_across_boundary(self, tmp_path):
        # non-aborting quarantine: samples must come out in global line
        # order even when the defects land in different chunks
        path = self._garbled_job_file(tmp_path, bad_rows=[4, 5, 6])
        policy = IngestPolicy(mode="quarantine")
        base = outcome(read_job_log, path, policy, 1)
        assert base[0] == "ok"
        for workers in (2, 4):
            assert outcome(read_job_log, path, policy, workers) == base
        samples = base[2][2]
        for recs in samples.values():
            line_nos = [line_no for line_no, _, _ in recs]
            assert line_nos == sorted(line_nos)


class TestReadDelimitedWorkers:
    def test_generic_frame_parallel_read(self, tmp_path):
        from repro.frame import Frame
        from repro.frame.io import read_delimited, write_delimited

        n = 500
        frame = Frame(
            {
                "i": np.arange(n, dtype=np.int64),
                "f": np.linspace(0.0, 1.0, n),
                "s": np.array(
                    [f"text|with {k} pipes" for k in range(n)], dtype=object
                ),
                "b": np.arange(n) % 2 == 0,
            }
        )
        path = tmp_path / "frame.txt"
        write_delimited(frame, path)
        serial = read_delimited(path, policy="quarantine")
        parallel = read_delimited(path, policy="quarantine", workers=4)
        assert serial.columns == parallel.columns
        for col in serial.columns:
            assert serial[col].dtype == parallel[col].dtype
            assert np.array_equal(serial[col], parallel[col]), col
