"""The content-addressed parse cache: hits, invalidation, corruption."""

import numpy as np
import pytest

from repro.logs import IngestPolicy, RasLog, read_ras_log, write_ras_log
from repro.parallel import ParseCache
from repro.parallel import cache as cache_mod

from tests.logs.test_ras import make_record


@pytest.fixture()
def ras_file(tmp_path):
    records = [
        make_record(recid=i, t=1000.0 + 5.0 * i) for i in range(1, 101)
    ]
    path = tmp_path / "ras.log"
    write_ras_log(RasLog.from_records(records), path)
    return path


@pytest.fixture()
def dirty_file(ras_file, tmp_path):
    from repro.faults.corruption import LogCorruptor

    out = tmp_path / "ras_bad.log"
    LogCorruptor(seed=3, rate=0.1, kind="ras").corrupt_file(ras_file, out)
    return out


@pytest.fixture()
def cache(tmp_path):
    return ParseCache(tmp_path / "cache")


def assert_logs_identical(a, b):
    assert a.frame.columns == b.frame.columns
    for col in a.frame.columns:
        assert a.frame[col].dtype == b.frame[col].dtype, col
        assert np.array_equal(a.frame[col], b.frame[col]), col
    ra, rb = a.quarantine, b.quarantine
    assert (ra is None) == (rb is None)
    if ra is not None:
        assert ra.total_rows == rb.total_rows
        assert ra.as_dict() == rb.as_dict()
        assert {
            d: [(r.line_no, r.text) for r in recs]
            for d, recs in ra.samples.items()
        } == {
            d: [(r.line_no, r.text) for r in recs]
            for d, recs in rb.samples.items()
        }


class TestHit:
    def test_second_read_hits_bit_identical(self, dirty_file, cache):
        first = read_ras_log(dirty_file, policy="quarantine", cache=cache)
        second = read_ras_log(dirty_file, policy="quarantine", cache=cache)
        assert first.cache_status == "miss"
        assert second.cache_status == "hit"
        assert_logs_identical(first, second)

    def test_no_cache_leaves_status_none(self, ras_file):
        log = read_ras_log(ras_file, policy="quarantine")
        assert log.cache_status is None

    def test_skip_mode_report_round_trips(self, dirty_file, cache):
        first = read_ras_log(dirty_file, policy="skip", cache=cache)
        second = read_ras_log(dirty_file, policy="skip", cache=cache)
        assert second.cache_status == "hit"
        # skip mode keeps counts only — no sample lines survive the trip
        assert all(not recs for recs in second.quarantine.samples.values())
        assert_logs_identical(first, second)

    def test_job_and_ras_kinds_do_not_collide(self, ras_file, cache):
        pol = IngestPolicy(mode="quarantine")
        assert cache.key_for(ras_file, kind="ras", policy=pol) != cache.key_for(
            ras_file, kind="job", policy=pol
        )


class TestInvalidation:
    def test_content_change_misses(self, ras_file, cache):
        read_ras_log(ras_file, policy="quarantine", cache=cache)
        with open(ras_file, "a") as fh:
            fh.write(
                "101|KERN_0802|KERNEL|_bgp_unit|KERN_PANIC|FATAL"
                "|2008-04-14-15.08.12.285324|R00-M0|SN1|late row\n"
            )
        log = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert log.cache_status == "miss"

    def test_policy_change_misses(self, ras_file, cache):
        read_ras_log(ras_file, policy="quarantine", cache=cache)
        log = read_ras_log(ras_file, policy="skip", cache=cache)
        assert log.cache_status == "miss"
        strict = read_ras_log(ras_file, policy="strict", cache=cache)
        assert strict.cache_status == "miss"

    def test_schema_version_bump_misses(
        self, ras_file, cache, monkeypatch
    ):
        # the version participates in the key, so a bump never even
        # finds the old entry — a clean miss, not a stale hit
        read_ras_log(ras_file, policy="quarantine", cache=cache)
        monkeypatch.setattr(cache_mod, "PARSE_SCHEMA_VERSION", 9999)
        log = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert log.cache_status == "miss"

    def test_sidecar_version_drift_is_stale(self, ras_file, cache):
        # an entry written by a different layout generation under the
        # same key (hand-migrated cache dir) classifies as stale
        import json

        read_ras_log(ras_file, policy="quarantine", cache=cache)
        for sidecar in cache.directory.glob("*.json"):
            payload = json.loads(sidecar.read_text())
            payload["version"] = 9999
            sidecar.write_text(json.dumps(payload))
        log = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert log.cache_status == "stale"

    def test_corrupt_payload_reparsed_then_repaired(self, ras_file, cache):
        first = read_ras_log(ras_file, policy="quarantine", cache=cache)
        for npz in cache.directory.glob("*.npz"):
            npz.write_bytes(b"not a zip archive")
        log = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert log.cache_status == "corrupt"
        assert_logs_identical(first, log)
        repaired = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert repaired.cache_status == "hit"
        assert_logs_identical(first, repaired)

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.1, 0.5, 0.9, 0.99])
    def test_truncated_npz_is_corrupt_then_repaired(
        self, ras_file, cache, keep_fraction
    ):
        # a partial atomic-write survivor / disk-full artifact: the npz
        # is readable as a file but cut short at an arbitrary point —
        # classification must be "corrupt" and fall through to a
        # re-parse, never raise out of the lookup
        first = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert first.cache_status == "miss"
        for npz in cache.directory.glob("*.npz"):
            payload = npz.read_bytes()
            npz.write_bytes(payload[: int(len(payload) * keep_fraction)])
        log = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert log.cache_status == "corrupt"
        assert_logs_identical(first, log)
        # the re-parse re-stored a good entry
        repaired = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert repaired.cache_status == "hit"
        assert_logs_identical(first, repaired)

    def test_truncated_npz_increments_corrupt_counter(self, ras_file, cache):
        from repro.obs.metrics import get_metrics

        get_metrics().reset()
        read_ras_log(ras_file, policy="quarantine", cache=cache)
        for npz in cache.directory.glob("*.npz"):
            payload = npz.read_bytes()
            npz.write_bytes(payload[: len(payload) // 2])
        read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert (
            get_metrics().value("ingest.cache.lookups", status="corrupt") == 1
        )

    def test_corrupt_sidecar_reparsed(self, ras_file, cache):
        read_ras_log(ras_file, policy="quarantine", cache=cache)
        for sidecar in cache.directory.glob("*.json"):
            sidecar.write_text("{broken json")
        log = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert log.cache_status == "corrupt"

    def test_mismatched_column_lengths_are_corrupt(self, ras_file, cache):
        # a decodable entry whose columns disagree on length (the
        # nastiest truncation survivor) must classify corrupt, not
        # build a broken frame
        import json

        read_ras_log(ras_file, policy="quarantine", cache=cache)
        for sidecar in cache.directory.glob("*.json"):
            key = sidecar.stem
            payload = json.loads(sidecar.read_text())
            loaded = cache.load(key)
            assert loaded is not None
            frame, _ = loaded
            short = frame.head(frame.num_rows - 1)
            arrays = {}
            for j, (name, encoding) in enumerate(
                (c[0], c[1]) for c in payload["columns"]
            ):
                col = (frame if j == 0 else short)[name]
                if encoding == "dict":
                    values, codes = np.unique(col, return_inverse=True)
                    arrays[f"{j}.values"] = values
                    arrays[f"{j}.codes"] = codes.astype(np.int32)
                else:
                    arrays[f"{j}.raw"] = col
            with open(cache.directory / f"{key}.npz", "wb") as fh:
                np.savez(fh, **arrays)
        log = read_ras_log(ras_file, policy="quarantine", cache=cache)
        assert log.cache_status == "corrupt"


class TestFailedParsesAreNotCached:
    def test_strict_raise_stores_nothing(self, dirty_file, cache):
        from repro.logs.quarantine import IngestError

        with pytest.raises(IngestError):
            read_ras_log(dirty_file, policy="strict", cache=cache)
        assert list(cache.directory.glob("*.json")) == []

    def test_abort_stores_nothing(self, dirty_file, cache):
        from repro.logs.quarantine import IngestAbortError

        policy = IngestPolicy(mode="quarantine", max_bad_records=0)
        with pytest.raises(IngestAbortError):
            read_ras_log(dirty_file, policy=policy, cache=cache)
        assert list(cache.directory.glob("*.json")) == []
