"""Byte-offset chunk planning: line alignment, coverage, decoding."""

import pytest

from repro.parallel.chunking import plan_chunks, scan_header, split_chunk_lines


def write_bytes(tmp_path, data: bytes, name="f.log"):
    path = tmp_path / name
    path.write_bytes(data)
    return path


class TestScanHeader:
    def test_plain_newline(self, tmp_path):
        p = write_bytes(tmp_path, b"a:int|b:str\nrow1\nrow2\n")
        assert scan_header(p) == ("a:int|b:str", 12)

    def test_crlf(self, tmp_path):
        p = write_bytes(tmp_path, b"a:int\r\nrow\r\n")
        assert scan_header(p) == ("a:int", 7)

    def test_lone_cr(self, tmp_path):
        p = write_bytes(tmp_path, b"a:int\rrow\r")
        assert scan_header(p) == ("a:int", 6)

    def test_bom_absorbed(self, tmp_path):
        p = write_bytes(tmp_path, b"\xef\xbb\xbfa:int\nrow\n")
        header, start = scan_header(p)
        assert header == "a:int"
        assert start == len(b"\xef\xbb\xbfa:int\n")

    def test_empty_file(self, tmp_path):
        p = write_bytes(tmp_path, b"")
        assert scan_header(p) == ("", 0)

    def test_header_without_terminator(self, tmp_path):
        p = write_bytes(tmp_path, b"a:int|b:str")
        assert scan_header(p) == ("a:int|b:str", 11)

    def test_undecodable_header_is_replaced_not_fatal(self, tmp_path):
        p = write_bytes(tmp_path, b"a\xff:int\nrow\n")
        header, _ = scan_header(p)
        assert "�" in header


class TestPlanChunks:
    def lines_file(self, tmp_path, n_lines, width=20):
        body = b"".join(
            (f"{i:0{width - 1}d}".encode() + b"\n") for i in range(n_lines)
        )
        return write_bytes(tmp_path, b"h:int\n" + body), 6

    def test_exact_cover_no_gaps(self, tmp_path):
        p, start = self.lines_file(tmp_path, 100)
        chunks = plan_chunks(p, 4, start)
        assert chunks[0][0] == start
        assert chunks[-1][1] == p.stat().st_size
        for (_, e1), (s2, _) in zip(chunks, chunks[1:]):
            assert e1 == s2

    def test_boundaries_line_aligned(self, tmp_path):
        p, start = self.lines_file(tmp_path, 100)
        raw = p.read_bytes()
        for _, end in plan_chunks(p, 4, start)[:-1]:
            assert raw[end - 1 : end] == b"\n"

    def test_chunks_concatenate_to_all_lines(self, tmp_path):
        p, start = self.lines_file(tmp_path, 37)
        raw = p.read_bytes()
        got = []
        for s, e in plan_chunks(p, 5, start):
            got.extend(split_chunk_lines(raw[s:e]))
        assert got == [f"{i:019d}" for i in range(37)]

    def test_more_chunks_than_lines(self, tmp_path):
        p, start = self.lines_file(tmp_path, 2)
        chunks = plan_chunks(p, 16, start)
        assert 1 <= len(chunks) <= 2
        assert chunks[0][0] == start and chunks[-1][1] == p.stat().st_size

    def test_empty_data_region(self, tmp_path):
        p = write_bytes(tmp_path, b"h:int\n")
        assert plan_chunks(p, 4, 6) == []

    def test_single_chunk(self, tmp_path):
        p, start = self.lines_file(tmp_path, 10)
        assert plan_chunks(p, 1, start) == [(start, p.stat().st_size)]

    def test_rejects_nonpositive(self, tmp_path):
        p, start = self.lines_file(tmp_path, 10)
        with pytest.raises(ValueError, match="num_chunks"):
            plan_chunks(p, 0, start)


class TestSplitChunkLines:
    def test_universal_newlines(self):
        assert split_chunk_lines(b"a\r\nb\rc\nd") == ["a", "b", "c", "d"]

    def test_trailing_terminator_drops_phantom_line(self):
        assert split_chunk_lines(b"a\nb\n") == ["a", "b"]

    def test_empty(self):
        assert split_chunk_lines(b"") == []

    def test_bad_utf8_becomes_replacement(self):
        (line,) = split_chunk_lines(b"bad\xffcell\n")
        assert "�" in line

    def test_multibyte_utf8_survives(self):
        assert split_chunk_lines("héllo\nwörld\n".encode()) == [
            "héllo",
            "wörld",
        ]
