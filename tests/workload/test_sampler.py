"""Unit tests for the submission stream sampler."""

import numpy as np
import pytest

from repro.workload import Population, PopulationProfile, WorkloadSampler
from repro.workload.tables import RUNTIME_BUCKETS


@pytest.fixture(scope="module")
def small_pop():
    profile = PopulationProfile(num_executables=300, total_submissions=2400)
    return Population.generate(np.random.default_rng(8), profile=profile)


@pytest.fixture(scope="module")
def stream(small_pop):
    sampler = WorkloadSampler(t_start=1000.0, duration=30 * 86400.0,
                              bucket_spill=0.0)
    return sampler.generate(small_pop, np.random.default_rng(9))


class TestStreamShape:
    def test_every_planned_submission_emitted(self, small_pop, stream):
        assert len(stream) == small_pop.total_planned_submissions()

    def test_sorted_by_time(self, stream):
        times = [s.submit_time for s in stream]
        assert times == sorted(times)

    def test_all_inside_window(self, stream):
        assert all(1000.0 <= s.submit_time < 1000.0 + 30 * 86400.0
                   for s in stream)

    def test_first_submission_fresh_rest_repeat(self, small_pop, stream):
        seen = set()
        for s in stream:
            if s.executable not in seen:
                seen.add(s.executable)
            # kinds: the sampler's first emission per executable is
            # 'fresh' in its own ordering, but interleaving can place a
            # later 'repeat' after another exe's 'fresh'; check per-exe
        per_exe_kinds = {}
        for s in stream:
            per_exe_kinds.setdefault(s.executable, []).append(s.kind)
        for kinds in per_exe_kinds.values():
            assert kinds.count("fresh") == 1

    def test_no_retries_in_planned_stream(self, stream):
        assert all(s.kind in ("fresh", "repeat") for s in stream)

    def test_user_project_propagated(self, small_pop, stream):
        by_path = small_pop.executable_by_path()
        for s in stream[:200]:
            exe = by_path[s.executable]
            assert s.user == exe.user
            assert s.project == exe.project
            assert s.size_midplanes == exe.size_midplanes


class TestRuntimes:
    def test_runtime_in_home_bucket_without_spill(self, small_pop, stream):
        by_path = small_pop.executable_by_path()
        for s in stream[:300]:
            lo, hi = RUNTIME_BUCKETS[by_path[s.executable].runtime_bucket]
            assert lo <= s.planned_runtime < hi

    def test_spill_changes_some_buckets(self, small_pop):
        sampler = WorkloadSampler(t_start=0.0, duration=30 * 86400.0,
                                  bucket_spill=0.5)
        stream = sampler.generate(small_pop, np.random.default_rng(10))
        by_path = small_pop.executable_by_path()
        from repro.workload.tables import runtime_bucket_index

        spilled = sum(
            runtime_bucket_index(s.planned_runtime)
            != by_path[s.executable].runtime_bucket
            for s in stream
        )
        assert spilled > 0.2 * len(stream)

    def test_deterministic(self, small_pop):
        sampler = WorkloadSampler(t_start=0.0, duration=30 * 86400.0)
        a = sampler.generate(small_pop, np.random.default_rng(5))
        b = sampler.generate(small_pop, np.random.default_rng(5))
        assert [s.submit_time for s in a] == [s.submit_time for s in b]
