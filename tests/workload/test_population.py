"""Unit tests for population synthesis."""

import collections

import numpy as np
import pytest

from repro.workload import Population, PopulationProfile
from repro.workload.tables import SIZE_CLASSES, TABLE_VI_TOTALS


@pytest.fixture(scope="module")
def pop():
    return Population.generate(np.random.default_rng(11))


class TestPaperCounts:
    def test_user_project_counts(self, pop):
        assert len(pop.users) == 236
        assert len(pop.suspicious_users) == 16
        assert len(pop.projects) == 91
        assert len(pop.suspicious_projects) == 19

    def test_executable_count(self, pop):
        assert pop.num_executables == 9664

    def test_total_submissions_exact(self, pop):
        assert pop.total_planned_submissions() == 68794

    def test_multi_submission_share(self, pop):
        # paper: 5,547 of 9,664 submitted more than once
        assert abs(pop.multi_submitted_count() - 5547) < 120

    def test_cell_margins_track_table6(self, pop):
        per_size = collections.Counter()
        for e in pop.executables:
            per_size[e.size_midplanes] += e.planned_submissions
        for i, size in enumerate(SIZE_CLASSES):
            expected = TABLE_VI_TOTALS[i].sum()
            got = per_size.get(size, 0)
            assert abs(got - expected) <= max(10, 0.05 * expected), (size, got)


class TestStructure:
    def test_every_executable_has_owner_and_project(self, pop):
        users, projects = set(pop.users), set(pop.projects)
        for e in pop.executables:
            assert e.user in users
            assert e.project in projects
            assert e.planned_submissions >= 1

    def test_suspicious_users_own_wide_codes(self, pop):
        wide = [e for e in pop.executables if e.size_midplanes >= 32]
        share = sum(1 for e in wide if e.user in pop.suspicious_users) / len(wide)
        narrow = [e for e in pop.executables if e.size_midplanes <= 2]
        share_narrow = sum(
            1 for e in narrow if e.user in pop.suspicious_users
        ) / len(narrow)
        assert share > share_narrow

    def test_heavy_submitters_never_buggy(self, pop):
        for e in pop.executables:
            if e.planned_submissions > 40:
                assert not pop.app_errors.is_buggy(e.path)

    def test_buggy_count_near_target(self, pop):
        # ~100 buggy codes produce the paper's ~102 app interruptions
        assert 30 <= pop.app_errors.num_buggy <= 220

    def test_scaled_profile(self):
        profile = PopulationProfile(num_executables=500, total_submissions=3000)
        pop = Population.generate(np.random.default_rng(3), profile=profile)
        assert pop.num_executables == 500
        assert pop.total_planned_submissions() == 3000

    def test_executable_paths_unique(self, pop):
        paths = [e.path for e in pop.executables]
        assert len(set(paths)) == len(paths)
