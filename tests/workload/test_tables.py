"""Unit tests for the published workload tables."""

import numpy as np
import pytest

from repro.workload.tables import (
    RUNTIME_BUCKETS,
    SIZE_CLASSES,
    TABLE_VI_INTERRUPTED,
    TABLE_VI_TOTALS,
    joint_probabilities,
    runtime_bucket_index,
    sample_cell_runtime,
)


class TestTableTranscription:
    def test_totals_sum_near_paper(self):
        """Table VI's bottom-right cell prints 68,692; the published
        cells actually sum to 68,632 (the 8-midplane row's printed
        margin 2,618 disagrees with its own cells, which sum to 2,558).
        We transcribe the cells and live with the paper's arithmetic."""
        assert TABLE_VI_TOTALS.sum() == 68632
        assert abs(TABLE_VI_TOTALS.sum() - 68692) <= 60

    def test_interrupted_sum_matches_paper(self):
        """206 category-1 interruptions."""
        assert TABLE_VI_INTERRUPTED.sum() == 206

    def test_row_sums_match_published_cells(self):
        margins = TABLE_VI_TOTALS.sum(axis=1)
        assert list(margins) == [46413, 11911, 4822, 2558, 1854, 656, 4, 341, 73]

    def test_column_sums_match_published_cells(self):
        margins = TABLE_VI_TOTALS.sum(axis=0)
        assert list(margins) == [15254, 12593, 25884, 14901]

    def test_shape(self):
        assert TABLE_VI_TOTALS.shape == (len(SIZE_CLASSES), len(RUNTIME_BUCKETS))

    def test_joint_probabilities_normalized(self):
        p = joint_probabilities()
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()


class TestBuckets:
    @pytest.mark.parametrize(
        "rt,idx",
        [(5.0, 0), (10.0, 0), (399.9, 0), (400.0, 1), (1599.0, 1),
         (1600.0, 2), (6399.0, 2), (6400.0, 3), (1e6, 3)],
    )
    def test_bucket_index(self, rt, idx):
        assert runtime_bucket_index(rt) == idx

    def test_sampled_runtimes_stay_in_bucket(self):
        rng = np.random.default_rng(1)
        for bucket, (lo, hi) in enumerate(RUNTIME_BUCKETS):
            for _ in range(200):
                rt = sample_cell_runtime(bucket, rng)
                assert lo <= rt < hi

    def test_long_bucket_mean_capped(self):
        """The open-ended bucket must not blow up aggregate demand."""
        rng = np.random.default_rng(2)
        rts = [sample_cell_runtime(3, rng) for _ in range(3000)]
        assert 10000 < np.mean(rts) < 25000
