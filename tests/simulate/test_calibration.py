"""Unit tests for the calibration profile."""

import pytest

from repro.simulate import CalibrationProfile
from repro.simulate.calibration import INTREPID_DURATION, INTREPID_T_START


class TestProfile:
    def test_defaults_match_table1(self):
        p = CalibrationProfile()
        assert p.duration == 237 * 86400.0
        assert p.total_submissions == 68794
        assert p.num_executables == 9664

    def test_window_starts_2009_01_05(self):
        from repro.logs import format_bgp_time

        assert format_bgp_time(INTREPID_T_START).startswith("2009-01-05")
        assert INTREPID_DURATION == 237 * 86400.0

    def test_scale_validated(self):
        with pytest.raises(ValueError):
            CalibrationProfile(scale=0.0)
        with pytest.raises(ValueError):
            CalibrationProfile(scale=1.5)

    def test_scale_shrinks_population(self):
        p = CalibrationProfile(scale=0.1)
        prof = p.population_profile()
        assert prof.num_executables == pytest.approx(966, abs=1)
        assert prof.total_submissions == pytest.approx(6879, abs=1)

    def test_scale_floor(self):
        p = CalibrationProfile(scale=0.001)
        prof = p.population_profile()
        assert prof.num_executables >= 50
        assert prof.total_submissions >= prof.num_executables

    def test_builders_respect_scale(self):
        p = CalibrationProfile(scale=0.5)
        proc = p.make_process()
        assert proc.ambient_count_mean == pytest.approx(125.0)
        em = p.make_emitter()
        assert em.noise_count_mean == pytest.approx(1_025_511.0)

    def test_rng_deterministic(self):
        a = CalibrationProfile(seed=3).rng().random(4)
        b = CalibrationProfile(seed=3).rng().random(4)
        assert (a == b).all()


class TestEndToEndSmall:
    """A small but complete trace exercising every component."""

    @pytest.fixture(scope="class")
    def trace(self):
        from repro.simulate import IntrepidSimulation

        profile = CalibrationProfile(seed=5, scale=0.02)
        return IntrepidSimulation(profile).run()

    def test_logs_nonempty(self, trace):
        assert trace.job_log.num_jobs > 1000
        assert len(trace.ras_log) > 10000
        assert trace.num_fatal_records > 50

    def test_ras_sorted_with_recids(self, trace):
        import numpy as np

        t = trace.ras_log.frame["event_time"]
        assert (np.diff(t) >= 0).all()
        assert trace.ras_log.frame["recid"][0] == 1

    def test_interrupted_jobs_consistent(self, trace):
        truth_ids = trace.ground_truth.interrupted_job_ids()
        by_field = {j for j, e in trace.interrupted_by.items() if e}
        assert truth_ids == by_field

    def test_severity_mix(self, trace):
        counts = trace.ras_log.severity_counts()
        assert counts["INFO"] > counts["FATAL"]
        assert "WARN" in counts

    def test_deterministic(self):
        from repro.simulate import IntrepidSimulation

        a = IntrepidSimulation(CalibrationProfile(seed=9, scale=0.01)).run()
        b = IntrepidSimulation(CalibrationProfile(seed=9, scale=0.01)).run()
        assert len(a.ras_log) == len(b.ras_log)
        assert a.job_log.num_jobs == b.job_log.num_jobs
        assert list(a.job_log.frame["end_time"]) == list(
            b.job_log.frame["end_time"]
        )

    def test_text_roundtrip(self, trace, tmp_path):
        from repro.logs import (
            read_job_log,
            read_ras_log,
            write_job_log,
            write_ras_log,
        )

        rp, jp = tmp_path / "ras.log", tmp_path / "job.log"
        # keep the io test fast: first 2000 RAS rows
        from repro.logs.ras import RasLog

        small = RasLog(trace.ras_log.frame.head(2000))
        write_ras_log(small, rp)
        write_job_log(trace.job_log, jp)
        assert len(read_ras_log(rp)) == 2000
        assert read_job_log(jp).num_jobs == trace.job_log.num_jobs
