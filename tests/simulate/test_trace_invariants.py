"""Cross-component invariants of generated traces.

These are the properties the co-analysis methodology *relies on*; if
the simulator violated them the reproduction would be circular or
meaningless.
"""

import numpy as np
import pytest

from repro.faults.catalog import FAULT_CATALOG, FaultClass
from repro.faults.injector import IncidentCause
from repro.machine.location import parse_location
from repro.machine.partition import parse_partition
from repro.simulate import CalibrationProfile, IntrepidSimulation


@pytest.fixture(scope="module")
def trace():
    return IntrepidSimulation(CalibrationProfile(seed=31, scale=0.05)).run()


class TestRasLogInvariants:
    def test_fatal_errcodes_come_from_catalog(self, trace):
        known = {t.errcode for t in FAULT_CATALOG}
        fatal_codes = set(trace.ras_log.fatal().frame["errcode"])
        assert fatal_codes <= known

    def test_all_locations_parse(self, trace):
        for loc in set(trace.ras_log.frame["location"]):
            parse_location(loc)  # must not raise

    def test_every_incident_has_records(self, trace):
        fatal_codes = set(trace.ras_log.fatal().frame["errcode"])
        for inc in trace.ground_truth.incidents:
            assert inc.errcode in fatal_codes

    def test_fatal_record_times_at_or_after_incidents(self, trace):
        first_by_code = {}
        fatal = trace.ras_log.fatal().frame
        for code, t in zip(fatal["errcode"], fatal["event_time"]):
            first_by_code.setdefault(code, t)
        for inc in trace.ground_truth.incidents:
            assert first_by_code[inc.errcode] <= inc.time + 1e-6


class TestJobLogInvariants:
    def test_job_locations_are_partitions(self, trace):
        for loc in set(trace.job_log.frame["location"]):
            p = parse_partition(loc)
            assert p.size >= 1

    def test_interrupted_jobs_end_at_incident_times(self, trace):
        ends = {
            int(r["job_id"]): float(r["end_time"])
            for r in trace.job_log.frame.to_rows()
        }
        for inc in trace.ground_truth.incidents:
            for jid in inc.interrupted_job_ids:
                assert ends[jid] == pytest.approx(inc.time, abs=1e-6)

    def test_interruption_location_inside_victim_partition(self, trace):
        partitions = trace.job_partitions
        for inc in trace.ground_truth.incidents:
            if not inc.interrupted_job_ids:
                continue
            loc = parse_location(inc.location)
            hit = any(
                partitions[jid].touches_location(loc)
                for jid in inc.interrupted_job_ids
                if jid in partitions
            )
            assert hit, f"{inc.errcode} at {inc.location} touches no victim"


class TestMethodologyPreconditions:
    def test_ambient_events_never_colocated_with_running_jobs(self, trace):
        """The §IV-A undetermined types exist because service-hardware
        faults strike where no job runs; the simulator must honor the
        construction or identification would be circular."""
        frame = trace.job_log.frame
        starts = frame["start_time"]
        ends = frame["end_time"]
        locations = [parse_partition(l) for l in frame["location"]]
        violations = 0
        ambients = [
            i
            for i in trace.ground_truth.incidents
            if i.cause is IncidentCause.AMBIENT
        ]
        for inc in ambients:
            mp = parse_location(inc.location).midplane_indices()[0]
            running = (
                (starts <= inc.time)
                & (ends > inc.time)
            )
            for idx in np.flatnonzero(running):
                if locations[idx].covers_midplane(mp):
                    violations += 1
                    break
        assert violations <= max(1, 0.02 * len(ambients))

    def test_nonfatal_alarms_never_interrupt(self, trace):
        for inc in trace.ground_truth.incidents:
            if inc.fault_type.fclass is FaultClass.NONFATAL_FATAL:
                assert not inc.interrupted_job_ids

    def test_redundant_incidents_share_chain_or_executable(self, trace):
        """Sticky refires carry the chain id of their breakage."""
        for inc in trace.ground_truth.incidents:
            if inc.cause is IncidentCause.STICKY_REFIRE:
                assert inc.chain_id >= 0
