"""Unit tests for streaming RAS log access."""

import pytest

from repro.logs import RasLog, write_ras_log
from repro.logs.stream import (
    PartialTail,
    extract_fatal,
    iter_ras_chunks,
    scan_severity_counts,
)
from tests.logs.test_ras import make_record


@pytest.fixture
def big_log(tmp_path):
    records = []
    for i in range(1, 1001):
        severity = "FATAL" if i % 10 == 0 else ("WARN" if i % 3 == 0 else "INFO")
        records.append(make_record(recid=i, t=1000.0 + i, severity=severity))
    path = tmp_path / "ras.log"
    write_ras_log(RasLog.from_records(records), path)
    return path


class TestChunking:
    def test_chunks_cover_everything(self, big_log):
        chunks = list(iter_ras_chunks(big_log, chunk_rows=128))
        assert sum(len(c) for c in chunks) == 1000
        assert len(chunks) == 8  # ceil(1000/128)

    def test_chunk_contents_typed(self, big_log):
        chunk = next(iter_ras_chunks(big_log, chunk_rows=10))
        assert chunk.frame["event_time"].dtype.kind == "f"
        assert chunk.frame["recid"].dtype.kind == "i"

    def test_single_chunk_when_large(self, big_log):
        chunks = list(iter_ras_chunks(big_log, chunk_rows=10_000))
        assert len(chunks) == 1

    def test_bad_chunk_rows(self, big_log):
        with pytest.raises(ValueError):
            next(iter_ras_chunks(big_log, chunk_rows=0))

    def test_bad_header_rejected(self, tmp_path):
        p = tmp_path / "bad.log"
        p.write_text("nope:str\nx\n")
        with pytest.raises(ValueError, match="header"):
            next(iter_ras_chunks(p))

    def test_bad_header_rejected_under_any_policy(self, tmp_path):
        # a wrong schema is not a per-record defect; no policy salvages it
        p = tmp_path / "bad.log"
        p.write_text("nope:str\nx\n")
        with pytest.raises(ValueError, match="header"):
            next(iter_ras_chunks(p, policy="quarantine"))


class TestDegenerateFiles:
    def test_empty_file_yields_typed_empty_chunk(self, tmp_path):
        p = tmp_path / "empty.log"
        p.write_text("")
        chunks = list(iter_ras_chunks(p))
        assert len(chunks) == 1
        assert len(chunks[0]) == 0
        assert chunks[0].frame["event_time"].dtype.kind == "f"
        assert chunks[0].frame["recid"].dtype.kind == "i"

    def test_header_only_file_yields_typed_empty_chunk(self, tmp_path):
        full = tmp_path / "full.log"
        write_ras_log(RasLog.from_records([make_record()]), full)
        header = full.read_text().split("\n")[0]
        p = tmp_path / "header_only.log"
        p.write_text(header + "\n")
        chunks = list(iter_ras_chunks(p))
        assert len(chunks) == 1
        assert len(chunks[0]) == 0
        assert chunks[0].frame["recid"].dtype.kind == "i"

    def test_empty_file_reads_as_empty_log(self, tmp_path):
        from repro.logs import read_ras_log

        p = tmp_path / "empty.log"
        p.write_text("")
        log = read_ras_log(p)
        assert len(log) == 0
        assert log.frame["event_time"].dtype.kind == "f"


class TestPartialTail:
    """A growing file's unterminated final line is pending, not a defect."""

    def _truncated_copy(self, big_log, tmp_path, cut=30):
        text = big_log.read_text()
        assert text.endswith("\n")
        p = tmp_path / "growing.log"
        p.write_text(text[:-1][:-cut])  # drop newline, then mid-line bytes
        return p, text

    def test_fragment_held_pending_under_strict(self, big_log, tmp_path):
        p, text = self._truncated_copy(big_log, tmp_path)
        tail = PartialTail()
        chunks = list(iter_ras_chunks(p, policy="strict", partial=tail))
        assert sum(len(c) for c in chunks) == 999
        assert tail.pending
        assert tail.line_no == 1001
        assert tail.text == text.rstrip("\n").rsplit("\n", 1)[1][:-30]

    def test_fragment_not_in_quarantine_report(self, big_log, tmp_path):
        from repro.logs.quarantine import IngestPolicy

        p, _ = self._truncated_copy(big_log, tmp_path)
        pol = IngestPolicy(mode="quarantine")
        report = pol.new_report(str(p))
        tail = PartialTail()
        list(iter_ras_chunks(p, policy=pol, report=report, partial=tail))
        assert tail.pending
        assert report.bad_rows == 0
        assert report.total_rows == 999

    def test_without_holder_fragment_is_a_defect(self, big_log, tmp_path):
        from repro.logs.quarantine import IngestError

        p, _ = self._truncated_copy(big_log, tmp_path)
        with pytest.raises(IngestError):
            list(iter_ras_chunks(p, policy="strict"))

    def test_complete_file_leaves_holder_clear(self, big_log):
        tail = PartialTail()
        tail.hold("stale", 99)  # a reused holder is reset per pass
        chunks = list(iter_ras_chunks(big_log, partial=tail))
        assert sum(len(c) for c in chunks) == 1000
        assert not tail.pending

    def test_unterminated_header_held_pending(self, big_log, tmp_path):
        header = big_log.read_text().split("\n", 1)[0]
        p = tmp_path / "header_partial.log"
        p.write_text(header[:-5])
        tail = PartialTail()
        chunks = list(iter_ras_chunks(p, partial=tail))
        assert len(chunks) == 1 and len(chunks[0]) == 0
        assert tail.pending and tail.line_no == 1

    def test_reread_after_newline_lands_is_whole(self, big_log, tmp_path):
        """The tailing loop: re-read from the same file once flushed."""
        text = big_log.read_text()
        p = tmp_path / "growing.log"
        p.write_text(text[:-40])
        tail = PartialTail()
        first = sum(len(c) for c in iter_ras_chunks(p, partial=tail))
        assert first == 999 and tail.pending
        p.write_text(text)  # writer finishes the line
        total = sum(len(c) for c in iter_ras_chunks(p, partial=tail))
        assert total == 1000
        assert not tail.pending


class TestScans:
    def test_severity_counts_match_full_load(self, big_log):
        from repro.logs import read_ras_log

        streamed = scan_severity_counts(big_log, chunk_rows=100)
        full = read_ras_log(big_log).severity_counts()
        assert streamed == full

    def test_extract_fatal(self, big_log):
        fatal = extract_fatal(big_log, chunk_rows=100)
        assert len(fatal) == 100
        assert set(fatal.frame["severity"]) == {"FATAL"}

    def test_extract_fatal_empty(self, tmp_path):
        path = tmp_path / "clean.log"
        write_ras_log(
            RasLog.from_records([make_record(severity="INFO")]), path
        )
        assert len(extract_fatal(path)) == 0

    def test_streamed_fatal_feeds_pipeline(self, big_log):
        """The streamed FATAL subset is a valid pipeline input."""
        from repro.core.events import fatal_event_table

        fatal = extract_fatal(big_log, chunk_rows=64)
        table = fatal_event_table(fatal)
        assert len(table) == 100
