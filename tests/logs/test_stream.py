"""Unit tests for streaming RAS log access."""

import pytest

from repro.logs import RasLog, write_ras_log
from repro.logs.stream import extract_fatal, iter_ras_chunks, scan_severity_counts
from tests.logs.test_ras import make_record


@pytest.fixture
def big_log(tmp_path):
    records = []
    for i in range(1, 1001):
        severity = "FATAL" if i % 10 == 0 else ("WARN" if i % 3 == 0 else "INFO")
        records.append(make_record(recid=i, t=1000.0 + i, severity=severity))
    path = tmp_path / "ras.log"
    write_ras_log(RasLog.from_records(records), path)
    return path


class TestChunking:
    def test_chunks_cover_everything(self, big_log):
        chunks = list(iter_ras_chunks(big_log, chunk_rows=128))
        assert sum(len(c) for c in chunks) == 1000
        assert len(chunks) == 8  # ceil(1000/128)

    def test_chunk_contents_typed(self, big_log):
        chunk = next(iter_ras_chunks(big_log, chunk_rows=10))
        assert chunk.frame["event_time"].dtype.kind == "f"
        assert chunk.frame["recid"].dtype.kind == "i"

    def test_single_chunk_when_large(self, big_log):
        chunks = list(iter_ras_chunks(big_log, chunk_rows=10_000))
        assert len(chunks) == 1

    def test_bad_chunk_rows(self, big_log):
        with pytest.raises(ValueError):
            next(iter_ras_chunks(big_log, chunk_rows=0))

    def test_bad_header_rejected(self, tmp_path):
        p = tmp_path / "bad.log"
        p.write_text("nope:str\nx\n")
        with pytest.raises(ValueError, match="header"):
            next(iter_ras_chunks(p))

    def test_bad_header_rejected_under_any_policy(self, tmp_path):
        # a wrong schema is not a per-record defect; no policy salvages it
        p = tmp_path / "bad.log"
        p.write_text("nope:str\nx\n")
        with pytest.raises(ValueError, match="header"):
            next(iter_ras_chunks(p, policy="quarantine"))


class TestDegenerateFiles:
    def test_empty_file_yields_typed_empty_chunk(self, tmp_path):
        p = tmp_path / "empty.log"
        p.write_text("")
        chunks = list(iter_ras_chunks(p))
        assert len(chunks) == 1
        assert len(chunks[0]) == 0
        assert chunks[0].frame["event_time"].dtype.kind == "f"
        assert chunks[0].frame["recid"].dtype.kind == "i"

    def test_header_only_file_yields_typed_empty_chunk(self, tmp_path):
        full = tmp_path / "full.log"
        write_ras_log(RasLog.from_records([make_record()]), full)
        header = full.read_text().split("\n")[0]
        p = tmp_path / "header_only.log"
        p.write_text(header + "\n")
        chunks = list(iter_ras_chunks(p))
        assert len(chunks) == 1
        assert len(chunks[0]) == 0
        assert chunks[0].frame["recid"].dtype.kind == "i"

    def test_empty_file_reads_as_empty_log(self, tmp_path):
        from repro.logs import read_ras_log

        p = tmp_path / "empty.log"
        p.write_text("")
        log = read_ras_log(p)
        assert len(log) == 0
        assert log.frame["event_time"].dtype.kind == "f"


class TestScans:
    def test_severity_counts_match_full_load(self, big_log):
        from repro.logs import read_ras_log

        streamed = scan_severity_counts(big_log, chunk_rows=100)
        full = read_ras_log(big_log).severity_counts()
        assert streamed == full

    def test_extract_fatal(self, big_log):
        fatal = extract_fatal(big_log, chunk_rows=100)
        assert len(fatal) == 100
        assert set(fatal.frame["severity"]) == {"FATAL"}

    def test_extract_fatal_empty(self, tmp_path):
        path = tmp_path / "clean.log"
        write_ras_log(
            RasLog.from_records([make_record(severity="INFO")]), path
        )
        assert len(extract_fatal(path)) == 0

    def test_streamed_fatal_feeds_pipeline(self, big_log):
        """The streamed FATAL subset is a valid pipeline input."""
        from repro.core.events import fatal_event_table

        fatal = extract_fatal(big_log, chunk_rows=64)
        table = fatal_event_table(fatal)
        assert len(table) == 100
