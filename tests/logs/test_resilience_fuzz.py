"""The corruption fuzz gate: every defect class x every policy.

The contract under test (see DESIGN's Robustness section): for a log
with injected defects covering the whole taxonomy, quarantine-mode
ingestion must recover **all** clean rows bit-identical to the
uncorrupted parse, the report's per-class counts must equal the
corruptor's ground truth exactly, and the pipeline must still complete
end to end.
"""

import numpy as np
import pytest

from repro.faults.corruption import (
    JOB_DEFECT_CLASSES,
    RAS_DEFECT_CLASSES,
    LogCorruptor,
)
from repro.logs import (
    IngestAbortError,
    IngestError,
    IngestPolicy,
    JobLog,
    RasLog,
    read_job_log,
    read_ras_log,
    write_job_log,
    write_ras_log,
)
from repro.logs.quarantine import DefectClass

from tests.logs.test_job import make_job
from tests.logs.test_ras import make_record


@pytest.fixture(scope="module")
def ras_file(tmp_path_factory):
    records = [
        make_record(
            recid=i,
            t=1000.0 + 7.0 * i,
            severity=("FATAL" if i % 11 == 0 else "INFO"),
        )
        for i in range(1, 401)
    ]
    path = tmp_path_factory.mktemp("fuzz") / "ras.log"
    write_ras_log(RasLog.from_records(records), path)
    return path


@pytest.fixture(scope="module")
def job_file(tmp_path_factory):
    jobs = [
        make_job(job_id=i, start=1000.0 + 60.0 * i, end=1800.0 + 60.0 * i)
        for i in range(1, 201)
    ]
    path = tmp_path_factory.mktemp("fuzz") / "job.log"
    write_job_log(JobLog.from_records(jobs), path)
    return path


def _corrupt(src, tmp_path, **kw):
    out = tmp_path / (src.stem + "_bad.log")
    result = LogCorruptor(**kw).corrupt_file(src, out)
    return out, result


def _assert_clean_rows_bit_identical(clean_log, damaged_log, mask):
    """Damaged-parse rows == mask-selected clean-parse rows, bitwise."""
    for col in clean_log.frame.columns:
        expected = clean_log.frame[col][mask]
        got = damaged_log.frame[col]
        assert np.array_equal(expected, got), col


class TestFullTaxonomyQuarantine:
    """The headline gate: <=10% damage over every class, full recovery."""

    @pytest.fixture(scope="class")
    def parsed(self, ras_file, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("full")
        bad_path, result = _corrupt(
            ras_file, tmp, seed=3, rate=0.1, kind="ras"
        )
        clean = read_ras_log(ras_file)
        damaged = read_ras_log(bad_path, policy="quarantine")
        return result, clean, damaged

    def test_every_class_injected(self, parsed):
        result, _, _ = parsed
        assert set(result.ground_truth) == set(RAS_DEFECT_CLASSES)

    def test_counts_match_ground_truth_exactly(self, parsed):
        result, _, damaged = parsed
        assert damaged.quarantine is not None
        assert damaged.quarantine.counts == result.ground_truth
        assert damaged.quarantine.bad_rows == result.num_injected

    def test_all_clean_rows_recovered_bit_identical(self, parsed):
        result, clean, damaged = parsed
        mask = result.clean_row_mask()
        assert len(damaged) == int(mask.sum())
        _assert_clean_rows_bit_identical(clean, damaged, mask)

    def test_total_rows_accounted(self, parsed):
        result, _, damaged = parsed
        report = damaged.quarantine
        # inserted duplicates add lines beyond the source rows
        inserts = sum(
            1 for inj in result.injected if inj.source_row is None
        )
        assert report.total_rows == result.num_source_rows + inserts
        assert report.clean_rows == len(damaged)

    def test_sample_truncation_under_heavy_damage(self, parsed):
        _, _, damaged = parsed
        report = damaged.quarantine
        for defect, kept in report.samples.items():
            assert len(kept) <= report.max_samples_per_class
            if report.counts[defect] > report.max_samples_per_class:
                assert len(kept) == report.max_samples_per_class


class TestPerClassMatrix:
    """Each defect class alone, under each of the three policies."""

    @pytest.mark.parametrize(
        "cls", RAS_DEFECT_CLASSES, ids=lambda c: c.value
    )
    def test_strict_raises_the_injected_class(
        self, ras_file, tmp_path, cls
    ):
        bad_path, result = _corrupt(
            ras_file, tmp_path, seed=11, rate=0.02, kind="ras",
            classes=(cls,),
        )
        assert result.num_injected > 0
        with pytest.raises(IngestError) as exc:
            read_ras_log(bad_path)  # default strict
        assert exc.value.defect is cls

    @pytest.mark.parametrize(
        "cls", RAS_DEFECT_CLASSES, ids=lambda c: c.value
    )
    @pytest.mark.parametrize("mode", ["quarantine", "skip"])
    def test_tolerant_modes_recover_and_count(
        self, ras_file, tmp_path, cls, mode
    ):
        bad_path, result = _corrupt(
            ras_file, tmp_path, seed=11, rate=0.05, kind="ras",
            classes=(cls,),
        )
        clean = read_ras_log(ras_file)
        damaged = read_ras_log(bad_path, policy=mode)
        report = damaged.quarantine
        assert report.counts == result.ground_truth == {
            cls: result.num_injected
        }
        _assert_clean_rows_bit_identical(
            clean, damaged, result.clean_row_mask()
        )
        if mode == "skip":
            assert all(not v for v in report.samples.values())


class TestAbortThresholds:
    def test_max_bad_records_aborts_midstream(self, ras_file, tmp_path):
        bad_path, result = _corrupt(
            ras_file, tmp_path, seed=5, rate=0.1, kind="ras"
        )
        assert result.num_injected > 3
        policy = IngestPolicy(mode="quarantine", max_bad_records=3)
        with pytest.raises(IngestAbortError) as exc:
            read_ras_log(bad_path, policy=policy)
        assert exc.value.report.bad_rows == 4  # aborts as soon as exceeded

    def test_max_bad_fraction_aborts_at_eof(self, ras_file, tmp_path):
        bad_path, result = _corrupt(
            ras_file, tmp_path, seed=5, rate=0.1, kind="ras"
        )
        policy = IngestPolicy(mode="quarantine", max_bad_fraction=0.01)
        with pytest.raises(IngestAbortError, match="max_bad_fraction") as exc:
            read_ras_log(bad_path, policy=policy)
        # the whole file was scanned before the fraction check fired
        assert exc.value.report.bad_rows == result.num_injected

    def test_generous_thresholds_pass(self, ras_file, tmp_path):
        bad_path, result = _corrupt(
            ras_file, tmp_path, seed=5, rate=0.1, kind="ras"
        )
        policy = IngestPolicy(
            mode="quarantine",
            max_bad_records=result.num_injected,
            max_bad_fraction=0.5,
        )
        damaged = read_ras_log(bad_path, policy=policy)
        assert damaged.quarantine.bad_rows == result.num_injected


class TestJobLogFuzz:
    def test_job_taxonomy_quarantine_recovery(self, job_file, tmp_path):
        bad_path, result = _corrupt(
            job_file, tmp_path, seed=9, rate=0.1, kind="job"
        )
        assert set(result.ground_truth) == set(JOB_DEFECT_CLASSES)
        clean = read_job_log(job_file)
        damaged = read_job_log(bad_path, policy="quarantine")
        assert damaged.quarantine.counts == result.ground_truth
        _assert_clean_rows_bit_identical(
            clean, damaged, result.clean_row_mask()
        )

    def test_job_strict_raises(self, job_file, tmp_path):
        bad_path, _ = _corrupt(
            job_file, tmp_path, seed=9, rate=0.1, kind="job"
        )
        with pytest.raises(IngestError):
            read_job_log(bad_path)


class TestEndToEndDegradedPipeline:
    def test_pipeline_completes_on_corrupted_pair(
        self, ras_file, job_file, tmp_path
    ):
        """Corrupted RAS + job pair still yields a full report."""
        from repro.core import CoAnalysis

        ras_bad, _ = _corrupt(ras_file, tmp_path, seed=3, rate=0.08,
                              kind="ras")
        job_bad, _ = _corrupt(job_file, tmp_path, seed=4, rate=0.08,
                              kind="job")
        ras_log = read_ras_log(ras_bad, policy="quarantine")
        job_log = read_job_log(job_bad, policy="quarantine")
        result = CoAnalysis().run(ras_log, job_log)
        text = result.report()
        assert "CO-ANALYSIS" in text
        # any degraded study must be disclosed, never silently absent
        for failure in result.stage_failures:
            assert failure.stage in text
