"""Unit tests for the job log schema and container."""

import pytest

from repro.logs import JobLog, JobRecord
from repro.logs.job import empty_job_log


def make_job(job_id=1, executable="/home/u/a.out", start=1000.0, end=2000.0,
             queued=900.0, location="R00-M0", size=1, user="alice",
             project="climate"):
    return JobRecord(
        job_id=job_id,
        job_name=f"job{job_id}",
        executable=executable,
        queued_time=queued,
        start_time=start,
        end_time=end,
        location=location,
        user=user,
        project=project,
        size_midplanes=size,
    )


class TestRecord:
    def test_runtime_and_wait(self):
        j = make_job()
        assert j.runtime == 1000.0
        assert j.wait_time == 100.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="before start"):
            make_job(start=2000.0, end=1000.0)

    def test_start_before_queue_rejected(self):
        with pytest.raises(ValueError, match="queued"):
            make_job(queued=1500.0, start=1000.0, end=2000.0)


class TestJobLog:
    @pytest.fixture
    def log(self):
        return JobLog.from_records(
            [
                make_job(job_id=2, start=2000.0, end=3000.0, executable="/a"),
                make_job(job_id=1, start=1000.0, end=2500.0, executable="/a"),
                make_job(job_id=3, start=2500.0, end=2600.0, executable="/b"),
            ]
        )

    def test_sorted_by_start(self, log):
        assert list(log.frame["job_id"]) == [1, 2, 3]

    def test_distinct_jobs(self, log):
        assert log.num_jobs == 3
        assert log.num_distinct_jobs() == 2

    def test_resubmitted_executables(self, log):
        assert list(log.resubmitted_executables()) == ["/a"]

    def test_runtimes(self, log):
        assert list(log.runtimes()) == [1500.0, 1000.0, 100.0]

    def test_time_span(self, log):
        assert log.time_span() == (1000.0, 3000.0)

    def test_running_at(self, log):
        assert set(log.running_at(2500.0).frame["job_id"]) == {2, 3}
        assert set(log.running_at(1000.0).frame["job_id"]) == {1}
        assert len(log.running_at(3000.0)) == 0

    def test_empty(self):
        log = empty_job_log()
        assert log.num_jobs == 0
        assert log.num_distinct_jobs() == 0

    def test_missing_column_rejected(self, log):
        with pytest.raises(ValueError, match="missing"):
            JobLog(log.frame.drop("user"))

    def test_roundtrip_records(self, log):
        again = JobLog.from_records(log.to_records())
        assert list(again.frame["job_id"]) == [1, 2, 3]
