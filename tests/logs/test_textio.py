"""Unit tests for log text io and BG/P timestamps."""

import pytest

from repro.logs import (
    JobLog,
    RasLog,
    format_bgp_time,
    parse_bgp_time,
    read_job_log,
    read_ras_log,
    write_job_log,
    write_ras_log,
)
from repro.logs.textio import describe_job_record, describe_ras_record

from tests.logs.test_job import make_job
from tests.logs.test_ras import make_record


class TestBgpTime:
    def test_format_matches_table2_shape(self):
        s = format_bgp_time(1208185692.285324)
        # e.g. 2008-04-14-15.08.12.285324
        assert len(s) == 26
        assert s[4] == s[7] == s[10] == "-"
        assert s[13] == s[16] == s[19] == "."

    def test_roundtrip(self):
        t = 1231161600.123456
        assert parse_bgp_time(format_bgp_time(t)) == pytest.approx(t, abs=1e-6)

    def test_paper_example(self):
        t = parse_bgp_time("2008-04-14-15.08.12.285324")
        assert format_bgp_time(t) == "2008-04-14-15.08.12.285324"


class TestRasRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        log = RasLog.from_records(
            [make_record(recid=i, t=100.0 + i * 0.5) for i in range(5)]
        )
        p = tmp_path / "ras.log"
        write_ras_log(log, p)
        back = read_ras_log(p)
        assert len(back) == 5
        assert list(back.frame["recid"]) == list(log.frame["recid"])
        assert back.frame["event_time"][3] == pytest.approx(101.5, abs=1e-6)

    def test_bgp_timestamps_on_disk(self, tmp_path):
        log = RasLog.from_records([make_record(t=1231161600.0)])
        p = tmp_path / "ras.log"
        write_ras_log(log, p)
        assert "2009-01-05" in p.read_text()


class TestJobRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        log = JobLog.from_records([make_job(job_id=i) for i in range(1, 4)])
        p = tmp_path / "job.log"
        write_job_log(log, p)
        back = read_job_log(p)
        assert back.num_jobs == 3
        assert list(back.frame["executable"]) == list(log.frame["executable"])


class TestForeignPlatformArtifacts:
    """Logs exported on other platforms carry BOMs and CRLF endings."""

    def test_ras_utf8_bom_tolerated(self, tmp_path):
        log = RasLog.from_records(
            [make_record(recid=i, t=100.0 + i) for i in range(3)]
        )
        p = tmp_path / "ras.log"
        write_ras_log(log, p)
        p.write_bytes(b"\xef\xbb\xbf" + p.read_bytes())
        back = read_ras_log(p)
        assert list(back.frame["recid"]) == [0, 1, 2]

    def test_ras_crlf_tolerated(self, tmp_path):
        log = RasLog.from_records(
            [make_record(recid=i, t=100.0 + i) for i in range(3)]
        )
        p = tmp_path / "ras.log"
        write_ras_log(log, p)
        p.write_bytes(p.read_bytes().replace(b"\n", b"\r\n"))
        back = read_ras_log(p)
        assert len(back) == 3
        assert back.frame["event_time"][2] == pytest.approx(102.0, abs=1e-6)

    def test_job_bom_and_crlf_tolerated(self, tmp_path):
        log = JobLog.from_records([make_job(job_id=i) for i in range(1, 4)])
        p = tmp_path / "job.log"
        write_job_log(log, p)
        p.write_bytes(
            b"\xef\xbb\xbf" + p.read_bytes().replace(b"\n", b"\r\n")
        )
        back = read_job_log(p)
        assert back.num_jobs == 3
        assert list(back.frame["executable"]) == list(log.frame["executable"])


class TestCards:
    def test_ras_card_mentions_all_fields(self):
        log = RasLog.from_records([make_record()])
        card = describe_ras_record(log.frame.row(0))
        for label in ("RECID", "MSG_ID", "COMPONENT", "SEVERITY", "LOCATION"):
            assert label in card

    def test_job_card_mentions_table3_fields(self):
        log = JobLog.from_records([make_job()])
        card = describe_job_record(log.frame.row(0))
        for label in ("Job ID", "Execution File", "Queuing Time", "Location"):
            assert label in card
