"""Unit tests for ingestion policies and the quarantine ledger."""

import pytest

from repro.logs.quarantine import (
    INGEST_MODES,
    SAMPLE_WIDTH,
    BadRecord,
    DefectClass,
    IngestAbortError,
    IngestError,
    IngestPolicy,
    QuarantineReport,
    coerce_policy,
    finish_ingest,
    handle_bad_record,
    structural_defect,
    typed_cell_defect,
)


class TestPolicy:
    def test_default_is_strict(self):
        assert IngestPolicy().is_strict
        assert coerce_policy(None).is_strict

    def test_mode_string_coerces(self):
        assert coerce_policy("quarantine").mode == "quarantine"
        assert coerce_policy("skip").mode == "skip"

    def test_policy_passes_through(self):
        pol = IngestPolicy(mode="quarantine", max_bad_records=3)
        assert coerce_policy(pol) is pol

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            IngestPolicy(mode="lenient")

    def test_modes_tuple_covers_all(self):
        assert INGEST_MODES == ("strict", "quarantine", "skip")

    def test_negative_max_bad_records_rejected(self):
        with pytest.raises(ValueError, match="max_bad_records"):
            IngestPolicy(mode="skip", max_bad_records=-1)

    def test_bad_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="max_bad_fraction"):
            IngestPolicy(mode="skip", max_bad_fraction=1.5)

    def test_skip_mode_report_keeps_no_samples(self):
        report = IngestPolicy(mode="skip").new_report()
        report.record(2, DefectClass.BLANK_LINE, "")
        assert report.bad_rows == 1
        assert report.samples.get(DefectClass.BLANK_LINE, []) == []

    def test_quarantine_mode_report_keeps_samples(self):
        report = IngestPolicy(mode="quarantine").new_report("x.log")
        report.record(2, DefectClass.BLANK_LINE, "")
        assert report.source == "x.log"
        assert len(report.samples[DefectClass.BLANK_LINE]) == 1


class TestHandleBadRecord:
    def test_strict_raises_typed_error(self):
        pol = IngestPolicy()
        with pytest.raises(IngestError) as exc:
            handle_bad_record(
                pol, pol.new_report(), 7, DefectClass.TRUNCATED_LINE, "1|2"
            )
        assert exc.value.line_no == 7
        assert exc.value.defect is DefectClass.TRUNCATED_LINE
        assert "truncated_line" in str(exc.value)

    def test_quarantine_records_instead_of_raising(self):
        pol = IngestPolicy(mode="quarantine")
        report = pol.new_report()
        handle_bad_record(report=report, policy=pol, line_no=3,
                          defect=DefectClass.BLANK_LINE, text="")
        assert report.count(DefectClass.BLANK_LINE) == 1

    def test_max_bad_records_aborts_incrementally(self):
        pol = IngestPolicy(mode="quarantine", max_bad_records=2)
        report = pol.new_report()
        handle_bad_record(pol, report, 2, DefectClass.BLANK_LINE, "")
        handle_bad_record(pol, report, 3, DefectClass.BLANK_LINE, "")
        with pytest.raises(IngestAbortError, match="max_bad_records"):
            handle_bad_record(pol, report, 4, DefectClass.BLANK_LINE, "")

    def test_abort_carries_the_report(self):
        pol = IngestPolicy(mode="skip", max_bad_records=0)
        report = pol.new_report()
        with pytest.raises(IngestAbortError) as exc:
            handle_bad_record(pol, report, 2, DefectClass.BLANK_LINE, "")
        assert exc.value.report is report
        assert exc.value.report.bad_rows == 1


class TestFinishIngest:
    def test_bad_fraction_abort(self):
        pol = IngestPolicy(mode="quarantine", max_bad_fraction=0.1)
        report = pol.new_report()
        report.total_rows = 10
        for i in range(2):
            report.record(2 + i, DefectClass.BLANK_LINE, "")
        with pytest.raises(IngestAbortError, match="max_bad_fraction"):
            finish_ingest(pol, report)

    def test_under_threshold_passes(self):
        pol = IngestPolicy(mode="quarantine", max_bad_fraction=0.5)
        report = pol.new_report()
        report.total_rows = 10
        report.record(2, DefectClass.BLANK_LINE, "")
        finish_ingest(pol, report)  # no raise

    def test_empty_file_never_aborts(self):
        pol = IngestPolicy(mode="quarantine", max_bad_fraction=0.0)
        finish_ingest(pol, pol.new_report())  # total_rows == 0


class TestReport:
    def test_counts_and_fractions(self):
        report = QuarantineReport()
        report.total_rows = 4
        report.record(2, DefectClass.BLANK_LINE, "")
        report.record(3, DefectClass.TRUNCATED_LINE, "1|2")
        assert report.bad_rows == 2
        assert report.clean_rows == 2
        assert report.bad_fraction == pytest.approx(0.5)
        assert report.as_dict() == {"blank_line": 1, "truncated_line": 1}

    def test_samples_bounded_per_class(self):
        report = QuarantineReport(max_samples_per_class=2)
        for i in range(5):
            report.record(2 + i, DefectClass.BLANK_LINE, "")
        assert report.count(DefectClass.BLANK_LINE) == 5
        assert len(report.samples[DefectClass.BLANK_LINE]) == 2

    def test_sample_text_truncated(self):
        report = QuarantineReport()
        report.record(2, DefectClass.GARBLED_DELIMITER, "x" * 1000)
        rec = report.samples[DefectClass.GARBLED_DELIMITER][0]
        assert isinstance(rec, BadRecord)
        assert len(rec.text) == SAMPLE_WIDTH

    def test_render_mentions_counts_and_samples(self):
        report = QuarantineReport()
        report.total_rows = 3
        report.record(2, DefectClass.BLANK_LINE, "")
        report.record(3, DefectClass.BAD_FIELD, "oops|row")
        text = report.render("RAS")
        assert "[RAS]" in text
        assert "blank_line" in text
        assert "bad_field" in text
        assert "line 3" in text
        assert "3 total" in text

    def test_render_clean(self):
        report = QuarantineReport()
        report.total_rows = 5
        assert "no bad records" in report.render()


class TestSharedChecks:
    def test_structural_precedence(self):
        # encoding damage trumps everything else
        assert (
            structural_defect("�|x", 2, 10)
            is DefectClass.ENCODING_GARBAGE
        )
        assert structural_defect("   ", 1, 10) is DefectClass.BLANK_LINE
        assert structural_defect("a|b", 2, 10) is DefectClass.TRUNCATED_LINE
        assert (
            structural_defect("a|b|c", 3, 2) is DefectClass.GARBLED_DELIMITER
        )
        assert structural_defect("a|b", 2, 2) is None

    @pytest.mark.parametrize("value,tag,bad", [
        ("12", "int", False),
        ("0x1A", "int", True),
        ("1.5", "float", False),
        ("1.2.3", "float", True),
        ("True", "bool", False),
        ("yes", "bool", True),
        ("anything", "str", False),
    ])
    def test_typed_cell_checks(self, value, tag, bad):
        defect = typed_cell_defect(value, tag)
        assert (defect is DefectClass.BAD_FIELD) == bad
