"""Unit tests for the RAS log schema and container."""

import numpy as np
import pytest

from repro.logs import RasLog, RasRecord
from repro.logs.ras import empty_ras_log


def make_record(recid=1, severity="FATAL", errcode="KERN_PANIC", t=100.0,
                location="R00-M0", component="KERNEL"):
    return RasRecord(
        recid=recid,
        msg_id="KERN_0802",
        component=component,
        subcomponent="_bgp_unit",
        errcode=errcode,
        severity=severity,
        event_time=t,
        location=location,
        serialnumber="44V4173YL11K8021017",
        message="An error was detected",
    )


class TestRecord:
    def test_fields_match_table2(self):
        r = make_record()
        for field in ("recid", "msg_id", "component", "subcomponent",
                      "errcode", "severity", "event_time", "location",
                      "serialnumber", "message"):
            assert hasattr(r, field)

    def test_is_fatal(self):
        assert make_record(severity="FATAL").is_fatal
        assert not make_record(severity="WARN").is_fatal

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            make_record(severity="CRITICAL")

    def test_bad_component_rejected(self):
        with pytest.raises(ValueError, match="component"):
            make_record(component="NETWORK")


class TestRasLog:
    @pytest.fixture
    def log(self):
        return RasLog.from_records(
            [
                make_record(recid=3, t=300.0, severity="INFO"),
                make_record(recid=1, t=100.0, severity="FATAL"),
                make_record(recid=2, t=200.0, severity="FATAL", errcode="DDR_ERR"),
                make_record(recid=4, t=200.0, severity="WARN"),
            ]
        )

    def test_sorted_by_time_then_recid(self, log):
        assert list(log.frame["recid"]) == [1, 2, 4, 3]

    def test_len(self, log):
        assert len(log) == log.num_records == 4

    def test_fatal_subset(self, log):
        fatal = log.fatal()
        assert len(fatal) == 2
        assert set(fatal.frame["errcode"]) == {"KERN_PANIC", "DDR_ERR"}

    def test_severity_counts(self, log):
        assert log.severity_counts() == {"FATAL": 2, "INFO": 1, "WARN": 1}

    def test_errcode_types(self, log):
        assert list(log.errcode_types()) == ["DDR_ERR", "KERN_PANIC"]

    def test_time_span(self, log):
        assert log.time_span() == (100.0, 300.0)

    def test_select_time_half_open(self, log):
        sel = log.select_time(100.0, 300.0)
        assert len(sel) == 3

    def test_roundtrip_records(self, log):
        records = log.to_records()
        again = RasLog.from_records(records)
        assert list(again.frame["recid"]) == list(log.frame["recid"])

    def test_empty_log(self):
        log = empty_ras_log()
        assert len(log) == 0
        assert len(log.fatal()) == 0
        with pytest.raises(ValueError):
            log.time_span()

    def test_missing_column_rejected(self, log):
        with pytest.raises(ValueError, match="missing"):
            RasLog(log.frame.drop("errcode"))
