"""Alert rules: grammar, hysteresis state machine, anti-flap fuzz."""

import numpy as np
import pytest

from repro.obs import AlertEngine, AlertRule, MetricSample
from repro.obs.alerts import coerce_rules


def sample(t, window_s=1.0, **values):
    """A MetricSample carrying one counter record per keyword."""
    records = tuple(
        {"name": name, "kind": "counter", "labels": {}, "value": value}
        for name, value in values.items()
    )
    return MetricSample(t=float(t), window_s=window_s, records=records)


def gauge_sample(t, name, value):
    return MetricSample(
        t=float(t),
        window_s=1.0,
        records=(
            {"name": name, "kind": "gauge", "labels": {}, "value": value},
        ),
    )


class TestGrammar:
    def test_minimal(self):
        r = AlertRule.parse("deep: stream.buffered > 100")
        assert r.name == "deep"
        assert r.metric == "stream.buffered"
        assert (r.op, r.threshold) == (">", 100.0)
        assert r.for_s == 0.0 and r.clear is None and r.severity == "WARN"
        assert not r.rate and r.labels == ()

    def test_full(self):
        r = AlertRule.parse(
            "drops: rate(stream.late_dropped{table=ras}) >= 0.5 "
            "for 10 clear 0.1 severity ERROR"
        )
        assert r.rate
        assert r.labels == (("table", "ras"),)
        assert (r.for_s, r.clear, r.severity) == (10.0, 0.1, "ERROR")
        assert r.signal == "rate(stream.late_dropped{table=ras})"

    def test_describe_round_trips(self):
        text = "drops: rate(x) > 0.5 for 10 clear 0.1 severity ERROR"
        r = AlertRule.parse(text)
        assert AlertRule.parse(r.describe()) == r

    @pytest.mark.parametrize(
        "text",
        [
            "no-colon x > 1",
            "name: metric ~ 1",
            "name: metric > notanumber",
            "name: metric > 1 severity LOUD",
            "name: metric{badselector} > 1",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            AlertRule.parse(text)

    def test_rejects_inverted_hysteresis_band(self):
        # clear must sit on the safe side of the fire threshold
        with pytest.raises(ValueError, match="clear"):
            AlertRule.parse("a: m > 10 clear 20")
        with pytest.raises(ValueError, match="clear"):
            AlertRule.parse("a: m < 10 clear 5")

    def test_coerce_mixes_strings_and_rules(self):
        parsed = AlertRule.parse("a: m > 1")
        rules = coerce_rules(["b: n < 2", parsed])
        assert [r.name for r in rules] == ["b", "a"]

    def test_coerce_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            coerce_rules(["a: m > 1", "a: n > 2"])


class TestStateMachine:
    def test_fires_immediately_without_for(self):
        engine = AlertEngine(["hot: m > 10"])
        events = engine.evaluate(sample(0.0, m=50))
        assert [e.kind for e in events] == ["firing"]
        assert "hot" in engine.firing()

    def test_sustained_duration_gates_firing(self):
        engine = AlertEngine(["hot: m > 10 for 5"])
        assert engine.evaluate(sample(0.0, m=50)) == []  # breach starts
        assert engine.evaluate(sample(3.0, m=50)) == []  # not sustained yet
        events = engine.evaluate(sample(5.0, m=50))
        assert [e.kind for e in events] == ["firing"]

    def test_breach_interrupted_by_safe_resets_timer(self):
        engine = AlertEngine(["hot: m > 10 for 5"])
        engine.evaluate(sample(0.0, m=50))
        engine.evaluate(sample(3.0, m=0))   # safe: timer resets
        engine.evaluate(sample(4.0, m=50))  # breach restarts here
        assert engine.evaluate(sample(6.0, m=50)) == []
        assert [e.kind for e in engine.evaluate(sample(9.0, m=50))] == [
            "firing"
        ]

    def test_clear_requires_sustained_safe(self):
        engine = AlertEngine(["hot: m > 10 for 4 clear 2"])
        engine.evaluate(sample(0.0, m=50))
        assert "hot" in {
            e.rule for e in engine.evaluate(sample(4.0, m=50))
        }
        assert engine.evaluate(sample(5.0, m=0)) == []  # safe starts
        assert engine.evaluate(sample(7.0, m=0)) == []
        events = engine.evaluate(sample(9.0, m=0))
        assert [e.kind for e in events] == ["cleared"]
        assert events[0].severity == "INFO"  # clears always log as INFO
        assert engine.firing() == {}

    def test_hysteresis_band_neither_fires_nor_clears(self):
        """Values between clear and threshold hold state AND timers."""
        engine = AlertEngine(["hot: m > 10 for 4 clear 2"])
        engine.evaluate(sample(0.0, m=50))
        engine.evaluate(sample(4.0, m=50))  # fires
        # oscillate inside the band (2 < v <= 10): firing must persist
        for t in range(5, 40):
            assert engine.evaluate(sample(float(t), m=5)) == []
        assert "hot" in engine.firing()
        # a dip into the band must not reset an ok-side breach timer
        engine2 = AlertEngine(["hot: m > 10 for 4 clear 2"])
        engine2.evaluate(sample(0.0, m=50))  # breach starts
        engine2.evaluate(sample(2.0, m=5))   # in-band: timer held
        assert [e.kind for e in engine2.evaluate(sample(4.0, m=50))] == [
            "firing"
        ]

    def test_none_values_are_inert(self):
        """A never-set gauge is unknown, not evidence either way."""
        engine = AlertEngine(["low: g < 5 for 2"])
        assert engine.evaluate(gauge_sample(0.0, "g", 1.0)) == []
        assert engine.evaluate(gauge_sample(1.0, "g", None)) == []
        # the breach timer survived the unknown reading
        assert [e.kind for e in engine.evaluate(gauge_sample(2.0, "g", 1.0))
                ] == ["firing"]

    def test_rate_signal(self):
        engine = AlertEngine(["fast: rate(m) > 10"])
        # 100 increments over a 20 s window = 5/s: below threshold
        assert engine.evaluate(sample(20.0, window_s=20.0, m=100)) == []
        # 100 over 2 s = 50/s: breach
        assert [e.kind for e in engine.evaluate(
            sample(22.0, window_s=2.0, m=100)
        )] == ["firing"]

    def test_fuzz_no_flapping(self):
        """Acceptance: a signal oscillating around one threshold cannot
        flap. With the value bouncing inside [clear, threshold] after a
        single excursion, there must be at most one firing and at most
        one cleared transition."""
        rng = np.random.default_rng(2011)
        engine = AlertEngine(["flappy: m > 100 for 3 clear 50"])
        transitions = []
        t = 0.0
        # phase 1: hard breach long enough to fire
        for _ in range(8):
            transitions += engine.evaluate(sample(t, m=500))
            t += 1.0
        # phase 2: noise entirely inside the hysteresis band
        for _ in range(500):
            v = float(rng.uniform(51, 100))
            transitions += engine.evaluate(sample(t, m=v))
            t += 1.0
        # phase 3: sustained safe
        for _ in range(8):
            transitions += engine.evaluate(sample(t, m=0))
            t += 1.0
        kinds = [e.kind for e in transitions]
        assert kinds == ["firing", "cleared"], f"flapped: {kinds}"

    def test_two_rules_independent(self):
        engine = AlertEngine(["a: m > 10", "b: n > 10"])
        events = engine.evaluate(sample(0.0, m=50, n=0))
        assert [e.rule for e in events] == ["a"]
        states = engine.states()
        assert states["a"].firing and not states["b"].firing
