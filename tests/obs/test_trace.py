"""Tracer behavior: nesting, attach, ambient activation, propagation."""

import contextvars
from concurrent.futures import ThreadPoolExecutor

from repro.obs import (
    Tracer,
    current_span_id,
    current_tracer,
    maybe_span,
)


class TestAmbient:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None
        assert current_span_id() is None

    def test_maybe_span_is_noop_without_tracer(self):
        with maybe_span("anything") as sp:
            assert sp is None

    def test_activate_installs_and_uninstalls(self):
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_activate_opens_root_span(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            pass
        (root,) = tracer.spans
        assert root.name == "run"
        assert root.parent_id is None

    def test_activate_without_root(self):
        tracer = Tracer()
        with tracer.activate(root=None):
            with tracer.span("only"):
                pass
        (only,) = tracer.spans
        assert only.parent_id is None


class TestNesting:
    def test_nested_spans_link_to_parent(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["outer"].parent_id == by_name["run"].span_id
        assert inner.wall_s >= 0.0
        assert outer.wall_s >= inner.wall_s

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = (s for s in tracer.spans if s.name in "ab")
        assert a.parent_id == b.parent_id

    def test_rows_note_attrs_survive(self):
        tracer = Tracer()
        with tracer.activate(root=None):
            with tracer.span("stage", note="4 workers", k=1) as sp:
                sp.rows = 42
        (span,) = tracer.spans
        assert (span.rows, span.note, span.attrs["k"]) == (42, "4 workers", 1)

    def test_as_record_stringifies_non_json_attrs(self):
        tracer = Tracer()
        with tracer.activate(root=None):
            with tracer.span("s", path=object()):
                pass
        record = tracer.spans[0].as_record()
        assert record["type"] == "span"
        assert isinstance(record["attrs"]["path"], str)

    def test_span_names(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            with tracer.span("x"):
                pass
        assert tracer.span_names() == {"run", "x"}


class TestAttach:
    def test_attach_parents_under_current_span(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            with tracer.span("ingest") as ingest:
                tracer.attach("chunk", wall_s=0.5, cpu_s=0.4, rows=10)
        chunk = next(s for s in tracer.spans if s.name == "chunk")
        assert chunk.parent_id == ingest.span_id
        assert chunk.wall_s == 0.5
        assert chunk.cpu_s == 0.4
        assert chunk.rows == 10

    def test_attach_explicit_none_parent_makes_root(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            tracer.attach("orphan", wall_s=0.1, parent_id=None)
        orphan = next(s for s in tracer.spans if s.name == "orphan")
        assert orphan.parent_id is None

    def test_attach_backdates_start(self):
        tracer = Tracer()
        with tracer.activate(root="run") as t:
            sp = t.attach("late", wall_s=1.0)
        assert sp.start_s >= 0.0  # clamped, never negative


class TestThreadPropagation:
    def test_copied_context_carries_tracer_and_parent(self):
        tracer = Tracer()

        def work():
            with maybe_span("task"):
                pass

        with tracer.activate(root="run"):
            with tracer.span("studies") as studies:
                with ThreadPoolExecutor(max_workers=2) as pool:
                    ctxs = [contextvars.copy_context() for _ in range(3)]
                    futures = [pool.submit(c.run, work) for c in ctxs]
                    for f in futures:
                        f.result()
        tasks = [s for s in tracer.spans if s.name == "task"]
        assert len(tasks) == 3
        assert all(t.parent_id == studies.span_id for t in tasks)

    def test_bare_pool_thread_sees_no_tracer(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            with ThreadPoolExecutor(max_workers=1) as pool:
                assert pool.submit(current_tracer).result() is None


class TestResources:
    def test_sample_resources_records_peak_rss(self):
        tracer = Tracer(sample_resources=True)
        with tracer.activate(root=None):
            with tracer.span("s"):
                pass
        attrs = tracer.spans[0].attrs
        assert attrs.get("max_rss_kb", 0) > 0

    def test_resources_off_by_default(self):
        tracer = Tracer()
        with tracer.activate(root=None):
            with tracer.span("s"):
                pass
        assert "max_rss_kb" not in tracer.spans[0].attrs
