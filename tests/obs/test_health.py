"""Health evaluation, atomic snapshot IO, and the probe's exit codes."""

import json

import pytest

from repro.obs import (
    HealthThresholds,
    evaluate_health,
    probe_health,
    read_health,
    write_health,
)
from repro.obs.health import status_exit_code

NOMINAL = {
    "cycle": 3,
    "feed_degraded": False,
    "watermark_lag_s": 10.0,
    "reorder_depth": 100,
    "late_drop_rate": 0.0,
    "checkpoint_age_s": 5.0,
    "store_backlog": 0,
}


class TestEvaluateHealth:
    def test_nominal_is_healthy(self):
        status, reasons = evaluate_health(NOMINAL)
        assert (status, reasons) == ("healthy", [])

    def test_missing_vitals_are_not_penalized(self):
        status, reasons = evaluate_health({"cycle": 1})
        assert (status, reasons) == ("healthy", [])

    @pytest.mark.parametrize(
        "key, value, fragment",
        [
            ("feed_degraded", True, "feed degraded"),
            ("watermark_lag_s", 1e6, "watermark lag"),
            ("reorder_depth", 10**9, "reorder buffer"),
            ("late_drop_rate", 0.5, "late-drop rate"),
            ("store_backlog", 10**9, "store backlog"),
        ],
    )
    def test_degraded_vitals(self, key, value, fragment):
        status, reasons = evaluate_health({**NOMINAL, key: value})
        assert status == "degraded"
        assert any(fragment in r for r in reasons)

    def test_checkpoint_age_is_unhealthy(self):
        # unable to persist progress = one crash from a long replay
        status, reasons = evaluate_health(
            {**NOMINAL, "checkpoint_age_s": 10_000.0}
        )
        assert status == "unhealthy"
        assert any("checkpoint age" in r for r in reasons)

    def test_custom_thresholds(self):
        th = HealthThresholds(max_reorder_depth=10)
        status, _ = evaluate_health(NOMINAL, thresholds=th)
        assert status == "degraded"

    def test_warn_alert_degrades(self):
        firing = {"slow": {"severity": "WARN", "value": 1.0}}
        status, reasons = evaluate_health(NOMINAL, firing=firing)
        assert status == "degraded"
        assert any("alert firing: slow" in r for r in reasons)

    def test_error_alert_is_unhealthy(self):
        firing = {"down": {"severity": "ERROR", "value": 1.0}}
        status, _ = evaluate_health(NOMINAL, firing=firing)
        assert status == "unhealthy"

    def test_worst_signal_wins(self):
        status, reasons = evaluate_health(
            {**NOMINAL, "feed_degraded": True, "checkpoint_age_s": 10_000.0}
        )
        assert status == "unhealthy"
        assert len(reasons) == 2


class TestSnapshotIO:
    def test_round_trip_adds_written_unix(self, tmp_path):
        path = tmp_path / "health.json"
        write_health(path, {"status": "healthy", "t": 1.0})
        got = read_health(path)
        assert got["status"] == "healthy"
        assert isinstance(got["written_unix"], float)

    def test_replace_leaves_no_temp_file(self, tmp_path):
        path = tmp_path / "health.json"
        write_health(path, {"status": "healthy"})
        write_health(path, {"status": "degraded"})
        assert [p.name for p in tmp_path.iterdir()] == ["health.json"]
        assert read_health(path)["status"] == "degraded"

    def test_read_missing_is_none(self, tmp_path):
        assert read_health(tmp_path / "nope.json") is None

    def test_read_torn_is_none(self, tmp_path):
        path = tmp_path / "health.json"
        path.write_text('{"status": "hea')
        assert read_health(path) is None


class TestProbe:
    def test_exit_codes(self):
        assert status_exit_code("healthy") == 0
        assert status_exit_code("degraded") == 1
        assert status_exit_code("unhealthy") == 2
        assert status_exit_code("garbage") == 2

    def test_fresh_snapshot(self, tmp_path):
        path = tmp_path / "health.json"
        write_health(path, {"status": "healthy", "reasons": []})
        verdict = probe_health(path, max_age_s=60.0)
        assert (verdict.status, verdict.exit_code) == ("healthy", 0)

    def test_degraded_snapshot_carries_reasons(self, tmp_path):
        path = tmp_path / "health.json"
        write_health(
            path, {"status": "degraded", "reasons": ["feed degraded"]}
        )
        verdict = probe_health(path, max_age_s=60.0)
        assert (verdict.status, verdict.exit_code) == ("degraded", 1)
        assert "feed degraded" in verdict.reasons
        assert "feed degraded" in verdict.describe()

    def test_missing_snapshot_is_unhealthy(self, tmp_path):
        verdict = probe_health(tmp_path / "nope.json")
        assert (verdict.status, verdict.exit_code) == ("unhealthy", 2)

    def test_stale_snapshot_presumed_dead(self, tmp_path):
        path = tmp_path / "health.json"
        write_health(path, {"status": "healthy"})
        written = read_health(path)["written_unix"]
        verdict = probe_health(path, max_age_s=60.0, now=written + 120.0)
        assert (verdict.status, verdict.exit_code) == ("unhealthy", 2)
        assert any("presumed dead" in r for r in verdict.reasons)

    def test_final_snapshot_exempt_from_staleness(self, tmp_path):
        # a finished daemon is not a dead one
        path = tmp_path / "health.json"
        write_health(path, {"status": "healthy", "final": True})
        written = read_health(path)["written_unix"]
        verdict = probe_health(path, max_age_s=60.0, now=written + 1e6)
        assert (verdict.status, verdict.exit_code) == ("healthy", 0)

    def test_bad_status_is_unhealthy(self, tmp_path):
        path = tmp_path / "health.json"
        path.write_text(json.dumps({"status": "excellent"}))
        verdict = probe_health(path)
        assert verdict.status == "unhealthy"
        assert any("bad status" in r for r in verdict.reasons)
