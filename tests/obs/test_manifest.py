"""Manifest writing, reading, validation and the bench exporter."""

import json

from repro.core.observations import Observation
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    MetricsRegistry,
    Tracer,
    config_fingerprint,
    read_manifest,
    record_bench,
    validate_manifest,
    write_manifest,
)


def _full_manifest(tmp_path):
    tracer = Tracer()
    with tracer.activate(root="run"):
        with tracer.span("stage") as sp:
            sp.rows = 7
    registry = MetricsRegistry()
    registry.counter("events", kind="fatal").inc(3)
    registry.histogram("wall").observe(0.5)
    obs = Observation(number=1, title="t", holds=True, measured={"x": 1.5})
    path = tmp_path / "run.jsonl"
    write_manifest(
        path,
        tracer=tracer,
        metrics=registry,
        config={"scale": 0.1, "workers": 2},
        observations=[obs],
    )
    return path


class TestRoundtrip:
    def test_written_manifest_validates_clean(self, tmp_path):
        path = _full_manifest(tmp_path)
        assert validate_manifest(path) == []

    def test_read_back_sections(self, tmp_path):
        manifest = read_manifest(_full_manifest(tmp_path))
        run = manifest["run"]
        assert run["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert run["config"] == {"scale": 0.1, "workers": 2}
        assert run["config_fingerprint"] == config_fingerprint(
            {"workers": 2, "scale": 0.1}
        )
        assert {s["name"] for s in manifest["spans"]} == {"run", "stage"}
        assert len(manifest["metrics"]) == 2
        (obs,) = manifest["observations"]
        assert obs["number"] == 1 and obs["holds"] is True
        assert obs["measured"] == {"x": 1.5}

    def test_one_line_per_record(self, tmp_path):
        path = _full_manifest(tmp_path)
        lines = path.read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)
        assert json.loads(lines[0])["type"] == "run"

    def test_empty_manifest_still_valid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_manifest(path)
        assert validate_manifest(path) == []


class TestFingerprint:
    def test_order_independent(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})


class TestValidator:
    def test_missing_run_record(self):
        problems = validate_manifest({"run": None, "spans": []})
        assert any("run record" in p for p in problems)

    def test_bad_schema_version(self, tmp_path):
        manifest = read_manifest(_full_manifest(tmp_path))
        manifest["run"]["schema_version"] = 99
        assert any(
            "schema_version" in p for p in validate_manifest(manifest)
        )

    def test_duplicate_span_id(self, tmp_path):
        manifest = read_manifest(_full_manifest(tmp_path))
        manifest["spans"].append(dict(manifest["spans"][0]))
        assert any("duplicate" in p for p in validate_manifest(manifest))

    def test_unknown_parent(self, tmp_path):
        manifest = read_manifest(_full_manifest(tmp_path))
        manifest["spans"][1]["parent"] = 12345
        assert any(
            "unknown parent" in p for p in validate_manifest(manifest)
        )

    def test_two_roots(self, tmp_path):
        manifest = read_manifest(_full_manifest(tmp_path))
        manifest["spans"][1]["parent"] = None
        assert any("one root" in p for p in validate_manifest(manifest))

    def test_negative_wall(self, tmp_path):
        manifest = read_manifest(_full_manifest(tmp_path))
        manifest["spans"][0]["wall_s"] = -1.0
        assert any("bad wall_s" in p for p in validate_manifest(manifest))

    def test_unknown_metric_kind(self, tmp_path):
        manifest = read_manifest(_full_manifest(tmp_path))
        manifest["metrics"][0]["kind"] = "summary"
        assert any("metric kind" in p for p in validate_manifest(manifest))

    def test_observation_missing_holds(self, tmp_path):
        manifest = read_manifest(_full_manifest(tmp_path))
        del manifest["observations"][0]["holds"]
        assert any("holds" in p for p in validate_manifest(manifest))

    def test_unreadable_path_reported_not_raised(self, tmp_path):
        problems = validate_manifest(tmp_path / "missing.jsonl")
        assert problems


class TestRecordBench:
    def test_creates_and_appends(self, tmp_path):
        path = record_bench("demo", "wall_s", 1.25, directory=tmp_path)
        assert path.name == "BENCH_demo.json"
        record_bench("demo", "wall_s", 1.5, directory=tmp_path, workers=4)
        records = json.loads(path.read_text())
        assert [r["value"] for r in records] == [1.25, 1.5]
        assert records[1]["workers"] == 4
        assert all(
            {"ts", "git_rev", "metric", "value"} <= set(r) for r in records
        )

    def test_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "b"))
        path = record_bench("env", "v", 1.0)
        assert path.parent == tmp_path / "b"

    def test_corrupt_file_restarted(self, tmp_path):
        (tmp_path / "BENCH_x.json").write_text("{not json")
        record_bench("x", "v", 2.0, directory=tmp_path)
        records = json.loads((tmp_path / "BENCH_x.json").read_text())
        assert len(records) == 1


class TestPerRunMetricDeltas:
    def test_two_back_to_back_runs_write_equal_counters(self, tmp_path):
        """Two identical runs in one process: the second manifest's
        counters must equal the first's, not double them."""
        registry = MetricsRegistry()

        def run(n):
            base = registry.mark()
            registry.counter("kernel.filter.raw").inc(10)
            registry.histogram("stage.wall").observe(0.25)
            path = tmp_path / f"run{n}.jsonl"
            write_manifest(path, metrics=registry, metrics_since=base)
            return read_manifest(path)["metrics"]

        first, second = run(1), run(2)
        assert first == second
        raw = [m for m in first if m["name"] == "kernel.filter.raw"]
        assert raw and raw[0]["value"] == 10
