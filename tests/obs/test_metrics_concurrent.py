"""MetricsRegistry under concurrent sampling (the live sampler's race).

The sampler's correctness claim is that ``collect(since=)`` windows
**tile the timeline**: with worker threads hammering instruments while
a sampler thread repeatedly collects, every increment lands in exactly
one window — nothing lost, nothing double-counted. A naive
snapshot-then-mark (two lock acquisitions) loses the increments that
slip between the two; these tests would catch that regression.
"""

import threading

import pytest

from repro.obs import MetricsRegistry
from repro.obs.live import MetricsSampler, sample_value

N_WORKERS = 4
INCS_PER_WORKER = 25_000


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCollectTiling:
    def test_no_lost_or_double_counted_increments(self, registry):
        counter = registry.counter("hits")
        stop = threading.Event()
        windows = []

        def sample_loop():
            mark = registry.mark()
            while not stop.is_set():
                records, mark = registry.collect(since=mark)
                windows.append(records)
            records, _ = registry.collect(since=mark)  # the tail window
            windows.append(records)

        def worker():
            for _ in range(INCS_PER_WORKER):
                counter.inc()

        sampler = threading.Thread(target=sample_loop)
        workers = [
            threading.Thread(target=worker) for _ in range(N_WORKERS)
        ]
        sampler.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        sampler.join()

        total = sum(
            rec["value"]
            for window in windows
            for rec in window
            if rec["name"] == "hits"
        )
        assert total == N_WORKERS * INCS_PER_WORKER
        assert registry.value("hits") == total
        assert len(windows) > 2  # the loop genuinely interleaved

    def test_histogram_count_and_sum_tile(self, registry):
        hist = registry.histogram("lat")
        stop = threading.Event()
        counts, sums = [], []

        def sample_loop():
            mark = registry.mark()
            while not stop.is_set():
                records, mark = registry.collect(since=mark)
                for rec in records:
                    counts.append(rec["count"])
                    sums.append(rec["sum"])
            records, _ = registry.collect(since=mark)
            for rec in records:
                counts.append(rec["count"])
                sums.append(rec["sum"])

        def worker():
            for _ in range(5_000):
                hist.observe(2.0)

        sampler = threading.Thread(target=sample_loop)
        workers = [threading.Thread(target=worker) for _ in range(3)]
        sampler.start()
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        stop.set()
        sampler.join()

        assert sum(counts) == 15_000
        assert sum(sums) == pytest.approx(30_000.0)

    def test_monotonic_gauge_is_a_level_across_windows(self, registry):
        """snapshot(since=) semantics: positions survive marks unchanged."""
        gauge = registry.monotonic_gauge("watermark")
        gauge.set(100.0)
        records, mark = registry.collect()
        (rec,) = [r for r in records if r["name"] == "watermark"]
        assert rec["value"] == 100.0
        # an idle window still reports the level, not None or zero
        records, mark = registry.collect(since=mark)
        (rec,) = [r for r in records if r["name"] == "watermark"]
        assert rec["value"] == 100.0
        gauge.set(50.0)  # stale report: monotonic ignores it
        gauge.set(250.0)
        records, _ = registry.collect(since=mark)
        (rec,) = [r for r in records if r["name"] == "watermark"]
        assert rec["value"] == 250.0


class TestSamplerThreadSafety:
    def test_background_sampler_with_concurrent_workers(self, registry):
        counter = registry.counter("c")
        sampler = MetricsSampler(registry=registry, interval_s=0.001)

        def worker():
            for _ in range(INCS_PER_WORKER):
                counter.inc()

        workers = [
            threading.Thread(target=worker) for _ in range(N_WORKERS)
        ]
        with sampler:
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        total = sum(
            sample_value(s, "c", kind="counter") or 0
            for s in sampler.ring.samples()
        )
        assert total == N_WORKERS * INCS_PER_WORKER
