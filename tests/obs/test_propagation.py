"""Span propagation across fork workers and the study thread pool.

The merged manifest of a chunk-parallel ingestion must carry one
``ingest.parse.chunk`` child span per planned chunk, and a serial run
must produce the same span-*name* set as a parallel one — the telemetry
shape is independent of the execution strategy.
"""

import numpy as np
import pytest

from repro.core import CoAnalysis
from repro.frame import Frame
from repro.logs.ras import RAS_COLUMNS, RasLog
from repro.logs.textio import read_ras_log, write_ras_log
from repro.obs import Tracer, get_metrics
from repro.parallel.chunking import plan_chunks, scan_header
from repro.simulate import CalibrationProfile, IntrepidSimulation

N_ROWS = 3_000


def small_ras_log(n: int = N_ROWS, seed: int = 11) -> RasLog:
    rng = np.random.default_rng(seed)
    sev = np.array(["INFO", "WARN", "ERROR", "FATAL"], dtype=object)
    comp = np.array(["KERNEL", "MMCS", "CARD", "MC"], dtype=object)
    data = {
        "recid": np.arange(1, n + 1, dtype=np.int64),
        "msg_id": np.array([f"KERN_{i % 7:04d}" for i in range(n)], dtype=object),
        "component": comp[rng.integers(0, len(comp), n)],
        "subcomponent": np.array(["sub0"] * n, dtype=object),
        "errcode": np.array(["_bgp_err_0"] * n, dtype=object),
        "severity": sev[rng.integers(0, len(sev), n)],
        "event_time": np.cumsum(rng.random(n)) + 1.2e9,
        "location": np.array([f"R{i % 4:02d}-M{i % 2}" for i in range(n)], dtype=object),
        "serialnumber": np.array([f"SN{i:06d}" for i in range(n)], dtype=object),
        "message": np.array(["machine check interrupt"] * n, dtype=object),
    }
    return RasLog(Frame({c: data[c] for c in RAS_COLUMNS}))


@pytest.fixture(scope="module")
def ras_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "ras.log"
    write_ras_log(small_ras_log(), path)
    return path


def _parse_chunk_spans(tracer):
    return [s for s in tracer.spans if s.name == "ingest.parse.chunk"]


class TestForkWorkerPropagation:
    def test_one_child_span_per_chunk(self, ras_file):
        _, data_start = scan_header(ras_file)
        planned = plan_chunks(str(ras_file), 3, data_start)
        tracer = Tracer()
        get_metrics().reset()
        with tracer.activate(root="run") as t:
            with t.span("ingest.ras") as ingest:
                log = read_ras_log(ras_file, policy="quarantine", workers=3)
        chunks = _parse_chunk_spans(tracer)
        assert len(chunks) == len(planned) == 3
        assert all(c.parent_id == ingest.span_id for c in chunks)
        # the workers' self-measurements came home with the chunks
        assert all(c.wall_s > 0.0 for c in chunks)
        assert all(c.attrs["bytes"] > 0 for c in chunks)
        assert sum(c.rows for c in chunks) == len(log)
        assert get_metrics().value("ingest.chunk.records") == len(log)

    def test_serial_and_parallel_same_span_names(self, ras_file):
        names = []
        for workers in (1, 3):
            tracer = Tracer()
            get_metrics().reset()
            with tracer.activate(root="run"):
                read_ras_log(ras_file, policy="quarantine", workers=workers)
            names.append(tracer.span_names())
        assert names[0] == names[1]
        assert "ingest.parse.chunk" in names[0]

    def test_inline_fallback_still_attaches(self, ras_file):
        # workers=2 but a single planned chunk runs inline, not pooled
        _, data_start = scan_header(ras_file)
        from repro.parallel.ingest import parallel_read_ras_frame

        tracer = Tracer()
        get_metrics().reset()
        with tracer.activate(root="run"):
            parallel_read_ras_frame(
                ras_file,
                policy="quarantine",
                workers=2,
                chunk_bounds=plan_chunks(str(ras_file), 1, data_start),
            )
        assert len(_parse_chunk_spans(tracer)) == 1


class TestStudyWavePropagation:
    def test_study_spans_nest_under_studies(self):
        profile = CalibrationProfile(seed=3, scale=0.02)
        trace = IntrepidSimulation(profile).run()
        tracer = Tracer()
        get_metrics().reset()
        with tracer.activate(root="run"):
            CoAnalysis(study_workers=2).run(trace.ras_log, trace.job_log)
        studies = next(s for s in tracer.spans if s.name == "studies")
        children = [
            s for s in tracer.spans if s.name.startswith("studies.")
        ]
        assert children, "no per-study spans recorded"
        assert all(c.parent_id == studies.span_id for c in children)

    def test_serial_and_concurrent_studies_same_names(self):
        profile = CalibrationProfile(seed=3, scale=0.02)
        trace = IntrepidSimulation(profile).run()
        names = []
        for workers in (1, 2):
            tracer = Tracer()
            get_metrics().reset()
            with tracer.activate(root="run"):
                CoAnalysis(study_workers=workers).run(
                    trace.ras_log, trace.job_log
                )
            names.append(tracer.span_names())
        assert names[0] == names[1]
