"""The live sampler: windows tile, ring bounds, accessors, telemetry."""

import json

import pytest

from repro.obs import (
    LiveTelemetry,
    MetricRing,
    MetricSample,
    MetricsRegistry,
    MetricsSampler,
    accumulate_samples,
    read_ops_log,
    sample_value,
    validate_ops_log,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


@pytest.fixture()
def registry():
    return MetricsRegistry()


def make_sampler(registry, clock, interval_s=5.0, **kw):
    return MetricsSampler(
        registry=registry, interval_s=interval_s, clock=clock, **kw
    )


class TestSampler:
    def test_windows_tile_counter_increments(self, registry):
        """Every increment lands in exactly one window — the sum of
        window deltas equals the cumulative total."""
        clock = FakeClock()
        sampler = make_sampler(registry, clock)
        c = registry.counter("work")
        total = 0
        samples = []
        for step in range(1, 6):
            c.inc(step)
            total += step
            samples.append(sampler.sample(clock.advance(5.0)))
        deltas = [sample_value(s, "work", kind="counter") for s in samples]
        assert sum(deltas) == total == registry.value("work")
        assert deltas == [1, 2, 3, 4, 5]

    def test_window_s_is_time_since_previous_sample(self, registry):
        clock = FakeClock(100.0)
        sampler = make_sampler(registry, clock)
        s1 = sampler.sample(clock.advance(7.0))
        s2 = sampler.sample(clock.advance(2.5))
        assert s1.window_s == 7.0
        assert s2.window_s == 2.5

    def test_maybe_sample_respects_interval(self, registry):
        clock = FakeClock()
        sampler = make_sampler(registry, clock, interval_s=5.0)
        assert sampler.maybe_sample(clock.advance(2.0)) is None
        assert sampler.maybe_sample(clock.advance(2.0)) is None
        assert sampler.maybe_sample(clock.advance(2.0)) is not None
        # interval restarts from the captured sample
        assert sampler.maybe_sample(clock.advance(4.0)) is None

    def test_rejects_nonpositive_interval(self, registry):
        with pytest.raises(ValueError):
            make_sampler(registry, FakeClock(), interval_s=0.0)

    def test_gauges_are_levels_not_deltas(self, registry):
        clock = FakeClock()
        sampler = make_sampler(registry, clock)
        registry.gauge("depth").set(10.0)
        s1 = sampler.sample(clock.advance(5.0))
        s2 = sampler.sample(clock.advance(5.0))  # no change between
        assert sample_value(s1, "depth") == 10.0
        assert sample_value(s2, "depth") == 10.0

    def test_background_thread_samples(self, registry):
        sampler = MetricsSampler(registry=registry, interval_s=0.01)
        registry.counter("c").inc(3)
        with sampler:
            pass  # stop() captures the tail window even if none fired
        samples = sampler.ring.samples()
        assert samples
        total = sum(
            sample_value(s, "c", kind="counter") or 0 for s in samples
        )
        assert total == 3


class TestRing:
    def test_capacity_bounds(self):
        ring = MetricRing(capacity=3)
        for t in range(10):
            ring.append(MetricSample(t=float(t), window_s=1.0, records=()))
        assert len(ring) == 3
        assert [s.t for s in ring.samples()] == [7.0, 8.0, 9.0]
        assert ring.latest().t == 9.0

    def test_empty(self):
        ring = MetricRing()
        assert len(ring) == 0 and ring.latest() is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MetricRing(capacity=0)


class TestSampleValue:
    def rec(self, **kw):
        base = {"name": "m", "kind": "counter", "labels": {}, "value": 1.0}
        base.update(kw)
        return base

    def test_label_subset_match_and_sum(self):
        s = MetricSample(
            t=0.0,
            window_s=2.0,
            records=(
                self.rec(labels={"table": "ras"}, value=3.0),
                self.rec(labels={"table": "job"}, value=5.0),
            ),
        )
        assert sample_value(s, "m") == 8.0  # no selector: both sum
        assert sample_value(s, "m", table="ras") == 3.0
        assert sample_value(s, "m", rate=True) == 4.0  # 8 / 2 s

    def test_absent_counter_is_zero_absent_gauge_is_none(self):
        s = MetricSample(t=0.0, window_s=1.0, records=())
        assert sample_value(s, "nope", kind="counter") == 0.0
        assert sample_value(s, "nope", kind="gauge") is None
        assert sample_value(s, "nope") is None  # unknown kind: unknown

    def test_never_set_monotonic_gauge_is_none(self):
        s = MetricSample(
            t=0.0,
            window_s=1.0,
            records=(
                self.rec(kind="monotonic_gauge", value=None),
            ),
        )
        assert sample_value(s, "m") is None

    def test_histogram_counts(self):
        s = MetricSample(
            t=0.0,
            window_s=2.0,
            records=(
                {"name": "h", "kind": "histogram", "labels": {},
                 "count": 6, "sum": 12.0, "min": 1.0, "max": 3.0},
            ),
        )
        assert sample_value(s, "h") == 6.0
        assert sample_value(s, "h", rate=True) == 3.0

    def test_round_trip_record(self):
        s = MetricSample(t=1.0, window_s=2.0, records=(self.rec(),))
        again = MetricSample.from_record(
            json.loads(json.dumps(s.as_record()))
        )
        assert again == s


class TestAccumulate:
    def test_counters_sum_gauges_last(self, registry):
        clock = FakeClock()
        sampler = make_sampler(registry, clock)
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        sampler.sample(clock.advance(5.0))
        registry.counter("c").inc(3)
        registry.gauge("g").set(9.0)
        sampler.sample(clock.advance(5.0))
        by_name = {
            r["name"]: r for r in accumulate_samples(sampler.ring.samples())
        }
        assert by_name["c"]["value"] == 5
        assert by_name["g"]["value"] == 9.0

    def test_monotonic_null_does_not_reset(self, registry):
        clock = FakeClock()
        sampler = make_sampler(registry, clock)
        registry.monotonic_gauge("pos").set(42.0)
        sampler.sample(clock.advance(5.0))
        sampler.sample(clock.advance(5.0))  # not set since: exports null
        (rec,) = accumulate_samples(sampler.ring.samples())
        assert rec["value"] == 42.0

    def test_histograms_merge_extremes(self, registry):
        clock = FakeClock()
        sampler = make_sampler(registry, clock)
        h = registry.histogram("lat")
        h.observe(1.0)
        sampler.sample(clock.advance(5.0))
        h.observe(9.0)
        sampler.sample(clock.advance(5.0))
        (rec,) = accumulate_samples(sampler.ring.samples())
        assert rec["count"] == 2
        assert (rec["min"], rec["max"]) == (1.0, 9.0)


class TestLiveTelemetry:
    def test_record_cycle_writes_all_three_files(self, tmp_path, registry):
        clock = FakeClock(0.0)
        live = LiveTelemetry(
            tmp_path / "ops",
            rules=["hot: rate(work) > 5 for 0 clear 1 severity ERROR"],
            interval_s=1.0,
            registry=registry,
            machine="t1",
            clock=clock,
        )
        c = registry.counter("work")
        status = []
        for _ in range(4):
            c.inc(100)
            clock.advance(2.0)
            status.append(live.record_cycle({"cycle": 1}))
        c.inc(0)
        clock.advance(30.0)
        status.append(live.record_cycle({"cycle": 5}, final=True))
        # the ERROR alert fired while hot → unhealthy; cleared at the end
        assert "unhealthy" in status
        assert status[-1] == "healthy"
        records = read_ops_log(live.ops_log.jsonl_path)
        assert validate_ops_log(records) == []
        kinds = {r["type"] for r in records}
        assert kinds == {"header", "sample", "heartbeat", "alert"}
        assert live.health_path.exists()
        assert (tmp_path / "ops" / "ops_ras.psv").exists()

    def test_final_cycle_flushes_tail_window(self, tmp_path, registry):
        clock = FakeClock(0.0)
        live = LiveTelemetry(
            tmp_path / "ops", interval_s=100.0, registry=registry,
            clock=clock,
        )
        registry.counter("tail").inc(7)
        clock.advance(1.0)  # far below interval_s
        live.record_cycle({}, final=True)
        records = read_ops_log(live.ops_log.jsonl_path)
        samples = [r for r in records if r["type"] == "sample"]
        assert len(samples) == 1  # forced despite the interval
        s = MetricSample.from_record(samples[0])
        assert sample_value(s, "tail", kind="counter") == 7.0
