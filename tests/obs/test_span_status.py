"""Span error status: raised stages mark their span, traces show it."""

import pytest

from repro.core.pipeline import CoAnalysis
from repro.obs import Tracer, validate_manifest, write_manifest
from repro.viz.trace import render_trace
from tests.stream.conftest import make_jobs, make_ras


class TestSpanStatus:
    def test_ok_by_default(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            with tracer.span("fine"):
                pass
        assert all(s.status == "ok" for s in tracer.spans)

    def test_raise_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.activate(root=None):
                with tracer.span("broken"):
                    raise ValueError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert span.attrs["error.type"] == "ValueError"
        assert span.wall_s >= 0.0  # the span still closed properly

    def test_error_in_child_leaves_parent_ok_if_caught(self):
        tracer = Tracer()
        with tracer.activate(root=None):
            with tracer.span("parent"):
                try:
                    with tracer.span("child"):
                        raise RuntimeError("contained")
                except RuntimeError:
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["child"].status == "error"
        assert by_name["parent"].status == "ok"

    def test_uncaught_error_marks_whole_ancestry(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.activate(root="run"):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        raise RuntimeError("up")
        statuses = {s.name: s.status for s in tracer.spans}
        assert statuses == {"run": "error", "outer": "error",
                            "inner": "error"}

    def test_status_survives_manifest_round_trip(self, tmp_path):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.activate(root=None):
                with tracer.span("bad"):
                    raise ValueError("x")
        path = tmp_path / "run.jsonl"
        write_manifest(path, tracer=tracer)
        assert validate_manifest(path) == []
        import json

        spans = [
            json.loads(line)
            for line in path.read_text().splitlines()[1:]
            if json.loads(line).get("type") == "span"
        ]
        (bad,) = [s for s in spans if s["name"] == "bad"]
        assert bad["status"] == "error"
        assert bad["attrs"]["error.type"] == "ValueError"

    def test_manifest_rejects_invalid_status(self, tmp_path):
        tracer = Tracer()
        with tracer.activate(root=None):
            with tracer.span("s"):
                pass
        path = tmp_path / "run.jsonl"
        write_manifest(path, tracer=tracer)
        import json

        lines = path.read_text().splitlines()
        doctored = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "span":
                record["status"] = "on-fire"
            doctored.append(json.dumps(record))
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(doctored) + "\n")
        assert any("status" in p for p in validate_manifest(bad))


class TestErrorBoundarySpans:
    def test_captured_stage_failure_is_an_error_span(self, monkeypatch):
        """A study that dies behind an error boundary completes the run
        but leaves a status=error span in the trace."""
        import repro.core.pipeline as pipeline_mod

        def explode(*args, **kwargs):
            raise RuntimeError("study down")

        monkeypatch.setattr(
            pipeline_mod, "categorize_interruptions", explode
        )
        ras = make_ras(300, seed=5)
        job = make_jobs(ras, 40, seed=6)
        tracer = Tracer()
        with tracer.activate(root="run"):
            result = CoAnalysis(study_workers=1).run(ras, job)
        assert any(
            f.stage == "studies.categorize" for f in result.stage_failures
        )
        (span,) = [
            s for s in tracer.spans if s.name == "studies.categorize"
        ]
        assert span.status == "error"
        assert span.attrs["error.type"] == "RuntimeError"


class TestTraceRendering:
    def make_failed_trace(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            with tracer.span("good"):
                pass
            try:
                with tracer.span("bad"):
                    raise ValueError("nope")
            except ValueError:
                pass
        return tracer

    def test_failed_spans_render_distinctly(self):
        tracer = self.make_failed_trace()
        out = render_trace(
            {"spans": [s.as_record() for s in tracer.spans]}
        )
        bad_line = next(ln for ln in out.splitlines() if "bad" in ln)
        good_line = next(ln for ln in out.splitlines() if "good" in ln)
        assert "!!" in bad_line
        assert "(error: ValueError)" in bad_line
        assert "!!" not in good_line

    def test_header_counts_failures(self):
        tracer = self.make_failed_trace()
        out = render_trace(
            {"spans": [s.as_record() for s in tracer.spans]}
        )
        assert "1 failed" in out

    def test_clean_trace_has_no_failure_marks(self):
        tracer = Tracer()
        with tracer.activate(root="run"):
            with tracer.span("fine"):
                pass
        out = render_trace(
            {"spans": [s.as_record() for s in tracer.spans]}
        )
        assert "!!" not in out and "failed" not in out
