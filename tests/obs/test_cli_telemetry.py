"""End-to-end: ``--telemetry-out`` manifests and the ``trace`` command."""

import json

import pytest

from repro.cli import main
from repro.obs import read_manifest, validate_manifest


@pytest.fixture(scope="module")
def demo_manifest(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "run.jsonl"
    rc = main([
        "demo", "--scale", "0.02", "--telemetry-out", str(path),
    ])
    assert rc == 0
    return path


class TestTelemetryOut:
    def test_manifest_written_and_valid(self, demo_manifest):
        assert demo_manifest.exists()
        assert validate_manifest(demo_manifest) == []

    def test_manifest_contents(self, demo_manifest):
        manifest = read_manifest(demo_manifest)
        names = {s["name"] for s in manifest["spans"]}
        assert {"run", "simulate", "filter", "match", "studies"} <= names
        assert manifest["metrics"], "metrics section empty"
        assert len(manifest["observations"]) == 12
        config = manifest["run"]["config"]
        assert config["scale"] == 0.02
        assert config["command"] == "demo"

    def test_path_announced(self, demo_manifest, capsys, tmp_path):
        out = tmp_path / "r.jsonl"
        assert main(["demo", "--scale", "0.02",
                     "--telemetry-out", str(out)]) == 0
        assert f"telemetry manifest: {out}" in capsys.readouterr().out

    def test_env_dir_fallback(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "tele"))
        assert main(["demo", "--scale", "0.02"]) == 0
        files = list((tmp_path / "tele").glob("run-*.jsonl"))
        assert len(files) == 1
        assert validate_manifest(files[0]) == []

    def test_no_manifest_without_request(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        assert main(["demo", "--scale", "0.02"]) == 0
        assert not list(tmp_path.glob("*.jsonl"))


class TestTelemetryOutAllCommands:
    """Every long-running command honors --telemetry-out (S2): the
    manifest is written, valid, and names the command in its config."""

    def test_fleet_manifest(self, tmp_path, capsys):
        path = tmp_path / "fleet.jsonl"
        rc = main([
            "fleet", "--machines", "2", "--scale", "0.02",
            "--windows", "2", "--telemetry-out", str(path),
        ])
        assert rc == 0
        assert validate_manifest(path) == []
        manifest = read_manifest(path)
        assert manifest["run"]["config"]["command"] == "fleet"
        assert f"telemetry manifest: {path}" in capsys.readouterr().out

    @pytest.fixture(scope="class")
    def trace_files(self, tmp_path_factory):
        from repro.logs import write_job_log, write_ras_log
        from tests.stream.conftest import make_jobs, make_ras

        root = tmp_path_factory.mktemp("trace")
        ras = make_ras(200, seed=41)
        job = make_jobs(ras, 30, seed=42)
        write_ras_log(ras, root / "ras.psv")
        write_job_log(job, root / "job.psv")
        return root / "ras.psv", root / "job.psv"

    def test_stream_manifest(self, trace_files, tmp_path, capsys):
        ras, job = trace_files
        path = tmp_path / "stream.jsonl"
        rc = main([
            "stream", "--ras", str(ras), "--job", str(job),
            "--increments", "2", "--telemetry-out", str(path),
        ])
        assert rc == 0
        assert validate_manifest(path) == []
        manifest = read_manifest(path)
        assert manifest["run"]["config"]["command"] == "stream"
        assert f"telemetry manifest: {path}" in capsys.readouterr().out

    def test_daemon_manifest(self, trace_files, tmp_path, capsys):
        ras, job = trace_files
        path = tmp_path / "daemon.jsonl"
        rc = main([
            "daemon", "--ras", str(ras), "--job", str(job),
            "--checkpoint-root", str(tmp_path / "ckpt"),
            "--poll-interval", "0", "--idle-exit", "2",
            "--telemetry-out", str(path),
        ])
        assert rc == 0
        assert validate_manifest(path) == []
        manifest = read_manifest(path)
        assert manifest["run"]["config"]["command"] == "daemon"
        assert f"telemetry manifest: {path}" in capsys.readouterr().out


class TestTraceCommand:
    def test_render(self, demo_manifest, capsys):
        assert main(["trace", str(demo_manifest)]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "hot stages" in out
        assert "studies.vulnerability" in out

    def test_top_limits_hot_stages(self, demo_manifest, capsys):
        assert main(["trace", str(demo_manifest), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert " 2. " in out and " 3. " not in out

    def test_validate_ok(self, demo_manifest, capsys):
        assert main(["trace", str(demo_manifest), "--validate"]) == 0
        assert "manifest OK" in capsys.readouterr().out

    def test_validate_rejects_damage(self, demo_manifest, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        lines = demo_manifest.read_text().strip().splitlines()
        run = json.loads(lines[0])
        run["schema_version"] = 99
        bad.write_text("\n".join([json.dumps(run), *lines[1:]]) + "\n")
        assert main(["trace", str(bad), "--validate"]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err
