"""CLI ops plane: daemon --ops-dir, `repro health`, `repro dash`."""

import pytest

from repro.cli import main
from repro.logs import write_job_log, write_ras_log
from repro.obs import read_ops_log, validate_ops_log
from repro.obs.metrics import get_metrics
from tests.stream.conftest import make_jobs, make_ras


@pytest.fixture(autouse=True)
def fresh_registry():
    get_metrics().reset()
    yield
    get_metrics().reset()


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    root = tmp_path_factory.mktemp("trace")
    ras = make_ras(200, seed=31)
    job = make_jobs(ras, 30, seed=32)
    write_ras_log(ras, root / "ras.psv")
    write_job_log(job, root / "job.psv")
    return root / "ras.psv", root / "job.psv"


@pytest.fixture()
def ops_dir(trace_files, tmp_path):
    """One daemon lifetime with the ops plane on; returns the ops dir."""
    ras, job = trace_files
    rc = main([
        "daemon",
        "--ras", str(ras),
        "--job", str(job),
        "--checkpoint-root", str(tmp_path / "ckpt"),
        "--poll-interval", "0",
        "--idle-exit", "2",
        "--ops-dir", str(tmp_path / "ops"),
        "--sample-interval", "0.001",
        "--alert-rule",
        "flow: rate(stream.released_rows) > 1 clear 0.5",
    ])
    assert rc == 0
    return tmp_path / "ops"


class TestDaemonOpsFlags:
    def test_ops_dir_populated(self, ops_dir):
        assert validate_ops_log(read_ops_log(ops_dir / "ops.jsonl")) == []
        assert (ops_dir / "ops_ras.psv").exists()
        assert (ops_dir / "health.json").exists()

    def test_bad_alert_rule_rejected(self, trace_files, tmp_path, capsys):
        ras, job = trace_files
        rc = main([
            "daemon", "--ras", str(ras), "--job", str(job),
            "--checkpoint-root", str(tmp_path / "ckpt"),
            "--ops-dir", str(tmp_path / "ops"),
            "--alert-rule", "not a rule",
        ])
        assert rc == 2
        assert "bad --alert-rule" in capsys.readouterr().err

    def test_alert_rule_requires_ops_dir(self, trace_files, tmp_path,
                                         capsys):
        ras, job = trace_files
        rc = main([
            "daemon", "--ras", str(ras), "--job", str(job),
            "--checkpoint-root", str(tmp_path / "ckpt"),
            "--alert-rule", "a: m > 1",
        ])
        assert rc == 2
        assert "requires --ops-dir" in capsys.readouterr().err

    def test_zero_sample_interval_rejected(self, trace_files, tmp_path,
                                           capsys):
        ras, job = trace_files
        rc = main([
            "daemon", "--ras", str(ras), "--job", str(job),
            "--checkpoint-root", str(tmp_path / "ckpt"),
            "--ops-dir", str(tmp_path / "ops"),
            "--sample-interval", "0",
        ])
        assert rc == 2
        assert "must be positive" in capsys.readouterr().err


class TestHealthCommand:
    def test_healthy_final_exit_zero(self, ops_dir, capsys):
        rc = main(["health", "--ops-dir", str(ops_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "status: healthy" in out
        assert "(final)" in out

    def test_history_prints_transitions(self, ops_dir, capsys):
        rc = main(["health", "--ops-dir", str(ops_dir), "--history"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "None -> " in out
        assert "transitions, last status:" in out

    def test_missing_ops_dir_exit_two(self, tmp_path, capsys):
        rc = main(["health", "--ops-dir", str(tmp_path / "nope")])
        assert rc == 2
        assert "unhealthy" in capsys.readouterr().out

    def test_history_without_heartbeats(self, tmp_path, capsys):
        (tmp_path / "ops.jsonl").write_text(
            '{"type": "header", "schema_version": 1}\n'
        )
        rc = main(["health", "--ops-dir", str(tmp_path), "--history"])
        assert rc == 2
        assert "no heartbeats" in capsys.readouterr().err


class TestDashCommand:
    def test_once_renders_frame(self, ops_dir, capsys):
        rc = main(["dash", "--ops-dir", str(ops_dir), "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[ OK ]" in out
        assert "rates over" in out
        assert "heartbeats" in out

    def test_prom_exposition(self, ops_dir, capsys):
        rc = main(["dash", "--ops-dir", str(ops_dir), "--prom"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_stream_released_rows counter" in out
        assert 'repro_stream_released_rows{table="ras"}' in out

    def test_prom_missing_log(self, tmp_path, capsys):
        rc = main(["dash", "--ops-dir", str(tmp_path), "--prom"])
        assert rc == 2
        assert "cannot read ops log" in capsys.readouterr().err

    def test_once_tolerates_empty_dir(self, tmp_path, capsys):
        rc = main(["dash", "--ops-dir", str(tmp_path), "--once"])
        assert rc == 0
        assert "no health snapshot" in capsys.readouterr().out
