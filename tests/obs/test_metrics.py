"""Metrics registry: instrument identity, values, snapshots, threads."""

import math
import threading

import pytest

from repro.obs import MetricsRegistry, get_metrics


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.value("c") == 5

    def test_same_key_same_instrument(self, registry):
        assert registry.counter("c", a="1") is registry.counter("c", a="1")

    def test_labels_distinguish(self, registry):
        registry.counter("c", mode="x").inc()
        registry.counter("c", mode="y").inc(2)
        assert registry.value("c", mode="x") == 1
        assert registry.value("c", mode="y") == 2

    def test_label_order_irrelevant(self, registry):
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter("c", b="2", a="1").value == 1


class TestGauge:
    def test_set_and_max(self, registry):
        g = registry.gauge("g")
        g.set(3.0)
        g.max(1.0)  # below: no-op
        assert registry.value("g", kind="gauge") == 3.0
        g.max(7.0)
        assert registry.value("g", kind="gauge") == 7.0


class TestMonotonicGauge:
    def test_only_advances(self, registry):
        g = registry.monotonic_gauge("stream.watermark")
        g.set(10.0)
        g.set(4.0)  # a stale or replayed report: ignored, not an error
        assert registry.value(
            "stream.watermark", kind="monotonic_gauge"
        ) == 10.0
        g.set(12.5)
        assert registry.value(
            "stream.watermark", kind="monotonic_gauge"
        ) == 12.5

    def test_unset_exports_null(self, registry):
        registry.monotonic_gauge("pos")
        (rec,) = registry.snapshot()
        assert rec["kind"] == "monotonic_gauge"
        assert rec["value"] is None

    def test_distinct_from_plain_gauge(self, registry):
        registry.gauge("x").set(1.0)
        registry.monotonic_gauge("x").set(2.0)
        assert registry.value("x", kind="gauge") == 1.0
        assert registry.value("x", kind="monotonic_gauge") == 2.0

    def test_survives_mark_delta_snapshot(self, registry):
        """Positions are levels: ``snapshot(since=)`` must not zero them.

        The daemon marks the registry at resume and exports deltas per
        manifest — the watermark set *before* the mark has to survive
        into the delta snapshot unchanged, alongside a counter that
        correctly rebases to zero.
        """
        registry.monotonic_gauge("stream.watermark").set(1000.0)
        registry.counter("cycles").inc(5)
        base = registry.mark()
        records = {r["name"]: r for r in registry.snapshot(since=base)}
        assert records["stream.watermark"]["value"] == 1000.0
        assert records["cycles"]["value"] == 0
        registry.monotonic_gauge("stream.watermark").set(1100.0)
        records = {r["name"]: r for r in registry.snapshot(since=base)}
        assert records["stream.watermark"]["value"] == 1100.0


class TestHistogram:
    def test_observe(self, registry):
        h = registry.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert (h.count, h.sum, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == 2.0

    def test_empty_histogram(self, registry):
        h = registry.histogram("h")
        assert math.isnan(h.mean)
        record = h.as_record()
        assert record["min"] is None and record["max"] is None

    def test_value_returns_count(self, registry):
        registry.histogram("h").observe(9.0)
        assert registry.value("h", kind="histogram") == 1


class TestRegistry:
    def test_value_absent_is_none(self, registry):
        assert registry.value("nope") is None

    def test_snapshot_records(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(2.0)
        registry.histogram("c").observe(1.0)
        records = registry.snapshot()
        assert [r["kind"] for r in records] == [
            "counter", "gauge", "histogram"
        ]
        assert all(r["type"] == "metric" for r in records)

    def test_reset(self, registry):
        registry.counter("a").inc()
        registry.reset()
        assert registry.value("a") is None
        assert registry.snapshot() == []

    def test_default_registry_is_process_wide(self):
        assert get_metrics() is get_metrics()

    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("hot")

        def burst():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=burst) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestMarkDelta:
    """Per-run delta snapshots: the fix for counters (and histogram
    windows) accumulating across successive runs in one process."""

    def test_counter_deltas_against_mark(self, registry):
        registry.counter("events").inc(3)
        base = registry.mark()
        registry.counter("events").inc(2)
        (rec,) = registry.snapshot(since=base)
        assert rec["value"] == 2
        # an un-marked snapshot still reports the cumulative total
        assert registry.snapshot()[0]["value"] == 5

    def test_instrument_born_after_mark_deltas_from_zero(self, registry):
        base = registry.mark()
        registry.counter("late").inc(4)
        (rec,) = registry.snapshot(since=base)
        assert rec["value"] == 4

    def test_gauge_reports_level_not_delta(self, registry):
        registry.gauge("depth").set(7.0)
        base = registry.mark()
        (rec,) = registry.snapshot(since=base)
        assert rec["value"] == 7.0

    def test_histogram_window_reopens_at_mark(self, registry):
        h = registry.histogram("wall")
        h.observe(100.0)  # run 1 outlier
        base = registry.mark()
        h.observe(2.0)
        h.observe(3.0)
        (rec,) = registry.snapshot(since=base)
        assert rec["count"] == 2
        assert rec["sum"] == 5.0
        assert rec["min"] == 2.0  # run 1's outlier does not leak in
        assert rec["max"] == 3.0

    def test_back_to_back_runs_report_identical_deltas(self, registry):
        def run():
            base = registry.mark()
            registry.counter("kernel.filter.raw").inc(10)
            registry.histogram("wall").observe(1.0)
            return registry.snapshot(since=base)

        first, second = run(), run()
        assert first == second
