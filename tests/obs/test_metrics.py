"""Metrics registry: instrument identity, values, snapshots, threads."""

import math
import threading

import pytest

from repro.obs import MetricsRegistry, get_metrics


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.value("c") == 5

    def test_same_key_same_instrument(self, registry):
        assert registry.counter("c", a="1") is registry.counter("c", a="1")

    def test_labels_distinguish(self, registry):
        registry.counter("c", mode="x").inc()
        registry.counter("c", mode="y").inc(2)
        assert registry.value("c", mode="x") == 1
        assert registry.value("c", mode="y") == 2

    def test_label_order_irrelevant(self, registry):
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter("c", b="2", a="1").value == 1


class TestGauge:
    def test_set_and_max(self, registry):
        g = registry.gauge("g")
        g.set(3.0)
        g.max(1.0)  # below: no-op
        assert registry.value("g", kind="gauge") == 3.0
        g.max(7.0)
        assert registry.value("g", kind="gauge") == 7.0


class TestHistogram:
    def test_observe(self, registry):
        h = registry.histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert (h.count, h.sum, h.min, h.max) == (3, 6.0, 1.0, 3.0)
        assert h.mean == 2.0

    def test_empty_histogram(self, registry):
        h = registry.histogram("h")
        assert math.isnan(h.mean)
        record = h.as_record()
        assert record["min"] is None and record["max"] is None

    def test_value_returns_count(self, registry):
        registry.histogram("h").observe(9.0)
        assert registry.value("h", kind="histogram") == 1


class TestRegistry:
    def test_value_absent_is_none(self, registry):
        assert registry.value("nope") is None

    def test_snapshot_records(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(2.0)
        registry.histogram("c").observe(1.0)
        records = registry.snapshot()
        assert [r["kind"] for r in records] == [
            "counter", "gauge", "histogram"
        ]
        assert all(r["type"] == "metric" for r in records)

    def test_reset(self, registry):
        registry.counter("a").inc()
        registry.reset()
        assert registry.value("a") is None
        assert registry.snapshot() == []

    def test_default_registry_is_process_wide(self):
        assert get_metrics() is get_metrics()

    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("hot")

        def burst():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=burst) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
