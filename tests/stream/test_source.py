"""The tailing source: byte-offset polls, rotation/truncation
fingerprints, retry/backoff/deadline behavior, and exactly-once
parsing over at-least-once delivery."""

import errno
import os

import pytest

from repro.faults.io import FaultKind, FaultPlan, FaultyFS, IOFault
from repro.logs import read_job_log, read_ras_log, write_job_log, write_ras_log
from repro.stream import frames_equal
from repro.stream.source import (
    FEED_DEGRADED,
    FEED_IDLE,
    FEED_OK,
    Feed,
    LogTailer,
    RetryExhausted,
    RetryPolicy,
    split_complete_lines,
    with_retry,
)
from tests.stream.conftest import make_jobs, make_ras

import numpy as np


class VirtualTime:
    """Injectable clock+sleep: sleeping advances time, nothing blocks."""

    def __init__(self):
        self.now = 0.0
        self.naps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.naps.append(seconds)
        self.now += seconds


NO_JITTER = dict(jitter=0.0, base_delay_s=0.01)


class TestSplitCompleteLines:
    def test_terminated_lines_and_tail(self):
        lines, tail = split_complete_lines(b"a\nb\nhalf")
        assert lines == [b"a", b"b"]
        assert tail == b"half"

    def test_no_newline_is_all_tail(self):
        assert split_complete_lines(b"partial") == ([], b"partial")

    def test_empty(self):
        assert split_complete_lines(b"") == ([], b"")

    def test_trailing_newline_leaves_no_tail(self):
        lines, tail = split_complete_lines(b"a\nb\n")
        assert lines == [b"a", b"b"]
        assert tail == b""


class TestRetryPolicy:
    def test_retryable_errnos(self):
        policy = RetryPolicy()
        assert policy.is_retryable(OSError(errno.EIO, "io"))
        assert policy.is_retryable(OSError(errno.ENOENT, "gone"))
        assert not policy.is_retryable(OSError(errno.EACCES, "denied"))
        assert not policy.is_retryable(ValueError("nope"))
        exhausted = RetryExhausted(3, 1.0, OSError(errno.EIO, "io"))
        assert not policy.is_retryable(exhausted)  # never retry the wrapper

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_s(k, rng) for k in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_recovers_within_attempt_limit(self):
        """N < max_attempts transient failures: the call succeeds."""
        vt = VirtualTime()
        failures = iter([OSError(errno.EIO, "io")] * 3)

        def flaky():
            exc = next(failures, None)
            if exc is not None:
                raise exc
            return "payload"

        result = with_retry(
            flaky,
            RetryPolicy(max_attempts=5, **NO_JITTER),
            np.random.default_rng(0),
            clock=vt.clock,
            sleep=vt.sleep,
        )
        assert result == "payload"
        assert len(vt.naps) == 3  # one backoff per transient failure

    def test_attempt_cap_raises_retry_exhausted(self):
        vt = VirtualTime()

        def always():
            raise OSError(errno.EIO, "io")

        with pytest.raises(RetryExhausted) as err:
            with_retry(
                always,
                RetryPolicy(max_attempts=3, **NO_JITTER),
                np.random.default_rng(0),
                clock=vt.clock,
                sleep=vt.sleep,
            )
        assert err.value.attempts == 3
        assert isinstance(err.value.last, OSError)

    def test_deadline_beats_attempt_cap(self):
        vt = VirtualTime()

        def always():
            raise OSError(errno.EIO, "io")

        with pytest.raises(RetryExhausted) as err:
            with_retry(
                always,
                RetryPolicy(
                    max_attempts=100,
                    base_delay_s=1.0,
                    jitter=0.0,
                    deadline_s=2.5,
                ),
                np.random.default_rng(0),
                clock=vt.clock,
                sleep=vt.sleep,
            )
        # slept 1s+2s after attempts 1 and 2; attempt 3 sees 3.0s >= 2.5s
        assert err.value.attempts == 3

    def test_non_retryable_propagates_unwrapped(self):
        def denied():
            raise PermissionError(errno.EACCES, "denied")

        with pytest.raises(PermissionError):
            with_retry(
                denied,
                RetryPolicy(**NO_JITTER),
                np.random.default_rng(0),
            )


@pytest.fixture()
def ras_file(tmp_path):
    path = tmp_path / "ras.psv"
    write_ras_log(make_ras(60, seed=3), path)
    return path


def tailer(path, **kw):
    vt = VirtualTime()
    kw.setdefault("retry", RetryPolicy(max_attempts=3, **NO_JITTER))
    return LogTailer(path, clock=vt.clock, sleep=vt.sleep, **kw)


class TestLogTailer:
    def test_poll_reads_then_idles(self, ras_file):
        t = tailer(ras_file)
        first = t.poll()
        assert first.status == FEED_OK
        assert len(first.lines) == 61  # header + 60 records
        assert t.poll().status == FEED_IDLE

    def test_growth_delivers_only_new_lines(self, ras_file):
        t = tailer(ras_file)
        t.poll()
        with open(ras_file, "a", encoding="utf-8") as fh:
            fh.write("new-line-one\nnew-line-two\n")
        poll = t.poll()
        assert poll.lines == ["new-line-one", "new-line-two"]

    def test_unterminated_tail_stays_pending(self, ras_file):
        t = tailer(ras_file)
        t.poll()
        with open(ras_file, "a", encoding="utf-8") as fh:
            fh.write("half-a-rec")
        assert t.poll().lines == []
        with open(ras_file, "a", encoding="utf-8") as fh:
            fh.write("ord\n")
        assert t.poll().lines == ["half-a-record"]

    def test_missing_file_is_idle_not_error(self, tmp_path):
        t = tailer(tmp_path / "not-yet.psv")
        poll = t.poll()
        assert poll.status == FEED_IDLE
        assert poll.error is None

    def test_rotation_detected_and_reread(self, ras_file):
        t = tailer(ras_file)
        n = len(t.poll().lines)
        # copytruncate-style rotation: same bytes, fresh inode
        tmp = ras_file.with_suffix(".tmp")
        tmp.write_bytes(ras_file.read_bytes())
        os.replace(tmp, ras_file)
        poll = t.poll()
        assert "rotated" in poll.events
        assert len(poll.lines) == n  # re-read from offset zero
        assert t.state.rotations == 1
        assert t.state.generation == 1

    def test_truncation_resets_offset(self, ras_file):
        t = tailer(ras_file)
        t.poll()
        text = ras_file.read_text().splitlines(keepends=True)
        ras_file.write_text("".join(text[:10]))
        poll = t.poll()
        assert "truncated" in poll.events
        assert len(poll.lines) == 10
        assert t.state.truncations == 1

    def test_transient_eio_recovers_without_loss(self, ras_file):
        """One EIO under a 3-attempt policy: the poll still succeeds."""
        fs = FaultyFS(
            FaultPlan([IOFault(op_index=1, kind=FaultKind.EIO)]),
            sleep=lambda s: None,
        )
        t = tailer(ras_file, fs=fs)
        poll = t.poll()
        assert poll.status == FEED_OK
        assert len(poll.lines) == 61

    def test_persistent_eio_degrades_and_keeps_offset(self, ras_file):
        """Deadline/attempt exhaustion: DEGRADED, cursor untouched, and
        the next healthy poll delivers everything — zero data loss."""
        fs = FaultyFS(
            FaultPlan(
                [
                    IOFault(op_index=1, kind=FaultKind.EIO),
                    IOFault(op_index=2, kind=FaultKind.EIO),
                ]
            ),
            sleep=lambda s: None,
        )
        t = tailer(ras_file, fs=fs, retry=RetryPolicy(max_attempts=2, **NO_JITTER))
        degraded = t.poll()
        assert degraded.status == FEED_DEGRADED
        assert degraded.error and "2 attempts" in degraded.error
        assert t.state.offset == 0  # nothing consumed, nothing skipped
        recovered = t.poll()
        assert recovered.status == FEED_OK
        assert len(recovered.lines) == 61

    def test_short_reads_never_split_records(self, ras_file):
        """Injected short reads change chunking, not content."""
        plan = FaultPlan(
            [
                IOFault(op_index=i, kind=FaultKind.SHORT_READ, payload=13)
                for i in (3, 4, 5, 6)
            ]
        )
        t = tailer(ras_file, fs=FaultyFS(plan, sleep=lambda s: None))
        clean = tailer(ras_file)
        assert t.poll().lines == clean.poll().lines


class TestFeeds:
    def test_ras_feed_roundtrips_file(self, ras_file):
        feed = Feed(ras_file, "ras")
        chunk = feed.poll()
        assert chunk.status == FEED_OK
        assert frames_equal(chunk.log.frame, read_ras_log(ras_file).frame)

    def test_job_feed_roundtrips_file(self, tmp_path):
        ras = make_ras(80, seed=5)
        jobs = make_jobs(ras, 12, seed=6)
        path = tmp_path / "job.psv"
        write_job_log(jobs, path)
        feed = Feed(path, "job")
        chunk = feed.poll()
        assert frames_equal(chunk.log.frame, read_job_log(path).frame)

    def test_rotation_reread_is_deduplicated(self, ras_file):
        feed = Feed(ras_file, "ras")
        first = feed.poll()
        tmp = ras_file.with_suffix(".tmp")
        tmp.write_bytes(ras_file.read_bytes())
        os.replace(tmp, ras_file)
        again = feed.poll()
        assert len(first.log) == 60
        assert len(again.log) == 0  # every re-delivered recid dropped
        assert again.status == FEED_IDLE

    def test_bad_line_quarantined_not_fatal(self, ras_file):
        feed = Feed(ras_file, "ras", policy="quarantine")
        feed.poll()
        with open(ras_file, "a", encoding="utf-8") as fh:
            fh.write("garbled|nonsense\n")
        chunk = feed.poll()
        assert chunk.status == FEED_IDLE
        assert feed.parser.report.bad_rows == 1

    def test_state_roundtrip_resumes_mid_file(self, tmp_path):
        ras = make_ras(100, seed=9)
        path = tmp_path / "ras.psv"
        lines = []
        write_ras_log(ras, path)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:51]))

        feed = Feed(path, "ras")
        head = feed.poll().log
        state = feed.state_dict()

        path.write_text("".join(lines))  # the feed keeps growing
        resumed = Feed(path, "ras")
        resumed.restore(state)
        tail = resumed.poll().log
        assert len(head) + len(tail) == 100
        assert not set(head.frame["recid"]) & set(tail.frame["recid"])

    def test_degraded_poll_carries_empty_log(self, ras_file):
        fs = FaultyFS(
            FaultPlan(
                [
                    IOFault(op_index=1, kind=FaultKind.EIO),
                    IOFault(op_index=2, kind=FaultKind.EIO),
                ]
            ),
            sleep=lambda s: None,
        )
        vt = VirtualTime()
        feed = Feed(
            ras_file,
            "ras",
            retry=RetryPolicy(max_attempts=2, **NO_JITTER),
            fs=fs,
            clock=vt.clock,
            sleep=vt.sleep,
        )
        chunk = feed.poll()
        assert chunk.status == FEED_DEGRADED
        assert len(chunk.log) == 0
        assert chunk.error is not None
