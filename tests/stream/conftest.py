"""Shared synthetic traces for the streaming equivalence suite.

Locations must parse (5 rack rows x 8 columns, midplane 0/1), so the
fixtures cycle ``R{row}{col}-M{m}`` over the valid grid. Two trace
shapes are provided:

* a generic mixed-severity trace dense enough to exercise every filter
  stage and the matcher (module-scoped, shared by most tests);
* a crafted trigger->follower trace whose ``_A -> _B`` pattern mines a
  causality rule, so the causal keep-mask path is validated too
  (generic random traces never reach min-support).
"""

import numpy as np
import pytest

from repro.core.pipeline import CoAnalysis
from repro.frame import Frame
from repro.logs.job import JobLog
from repro.logs.ras import RasLog


def valid_locations(n):
    return np.array(
        [f"R{(i % 40) // 8}{(i % 40) % 8}-M{i % 2}" for i in range(n)],
        dtype=object,
    )


def make_ras(n, seed=2011, t0=1.2e9, mean_gap=3.0):
    rng = np.random.default_rng(seed)
    sev = np.array(["INFO", "WARN", "ERROR", "FATAL"], dtype=object)
    comp = np.array(["KERNEL", "MMCS", "CARD", "MC"], dtype=object)
    return RasLog(
        Frame(
            {
                "recid": np.arange(1, n + 1, dtype=np.int64),
                "msg_id": np.array(
                    [f"KERN_{i % 97:04d}" for i in range(n)], dtype=object
                ),
                "component": comp[rng.integers(0, len(comp), n)],
                "subcomponent": np.array(
                    [f"sub{i % 11}" for i in range(n)], dtype=object
                ),
                "errcode": np.array(
                    [f"_bgp_err_{i % 23}" for i in range(n)], dtype=object
                ),
                "severity": sev[rng.integers(0, len(sev), n)],
                "event_time": np.cumsum(rng.random(n) * 2 * mean_gap) + t0,
                "location": valid_locations(n),
                "serialnumber": np.array(
                    [f"SN{i:08d}" for i in range(n)], dtype=object
                ),
                "message": np.array(
                    [f"msg {i}" for i in range(n)], dtype=object
                ),
            }
        )
    )


def make_jobs(ras_log, n, seed=7):
    t0, t1 = ras_log.time_span()
    rng = np.random.default_rng(seed)
    start = np.sort(t0 + rng.random(n) * (t1 - t0))
    end = start + 30.0 + rng.random(n) * 600.0
    return JobLog(
        Frame(
            {
                "job_id": np.arange(1, n + 1, dtype=np.int64),
                "job_name": np.array(
                    [f"job{i % 13}" for i in range(n)], dtype=object
                ),
                "executable": np.array(
                    [f"/bin/app{i % 17}" for i in range(n)], dtype=object
                ),
                "queued_time": start - 5.0,
                "start_time": start,
                "end_time": end,
                "location": valid_locations(n),
                "user": np.array([f"u{i % 5}" for i in range(n)], dtype=object),
                "project": np.array(
                    [f"p{i % 3}" for i in range(n)], dtype=object
                ),
                "size_midplanes": np.ones(n, dtype=np.int64),
            }
        )
    )


def make_causal_trace(periods=25, t0=1.2e9):
    """Trigger ``_A`` every 400 s, follower ``_B`` 50 s later.

    The 50 s lag sits inside the default 120 s causality window but the
    400 s period is past the 300 s temporal/spatial thresholds, so both
    types survive chaining and the miner sees a confident A->B rule.
    """
    times, errs = [], []
    for k in range(periods):
        times += [t0 + k * 400.0, t0 + k * 400.0 + 50.0]
        errs += ["_A", "_B"]
    n = len(times)
    ras = RasLog(
        Frame(
            {
                "recid": np.arange(1, n + 1, dtype=np.int64),
                "msg_id": np.array(["KERN_0001"] * n, dtype=object),
                "component": np.array(["KERNEL"] * n, dtype=object),
                "subcomponent": np.array(["sub"] * n, dtype=object),
                "errcode": np.array(errs, dtype=object),
                "severity": np.array(["FATAL"] * n, dtype=object),
                "event_time": np.array(times, dtype=np.float64),
                "location": valid_locations(n),
                "serialnumber": np.array(["SN0"] * n, dtype=object),
                "message": np.array(["m"] * n, dtype=object),
            }
        )
    )
    return ras, make_jobs(ras, 40, seed=3)


@pytest.fixture(scope="module")
def trace():
    ras = make_ras(1500)
    return ras, make_jobs(ras, 200)


@pytest.fixture(scope="module")
def batch(trace):
    ras, job = trace
    return CoAnalysis().run(ras, job)
