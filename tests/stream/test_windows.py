"""Half-open window boundaries: coverage edges, trace cuts, log
selection and the store partitioner all agree that a record landing
exactly on a cut belongs to exactly one side of it."""

import numpy as np
import pytest

from repro.frame import concat
from repro.store import ShardedDataset, partition_edges
from repro.stream import coverage_edges, split_trace

from tests.stream.conftest import make_jobs, make_ras


class TestCoverageEdges:
    def test_edge_count_and_span(self):
        edges = coverage_edges(0.0, 100.0, 4)
        assert len(edges) == 5
        assert edges[0] == 0.0
        assert edges[-1] > 100.0  # one ulp past the closed maximum

    def test_closed_maximum_falls_in_last_window(self):
        edges = coverage_edges(10.0, 20.0, 3)
        # half-open membership of the span maximum itself
        i = np.searchsorted(edges, 20.0, side="right") - 1
        assert i == 2
        assert edges[i] <= 20.0 < edges[i + 1]

    def test_degenerate_span(self):
        edges = coverage_edges(5.0, 5.0, 3)
        assert edges[-1] > 5.0
        assert (edges[:-1] == 5.0).all()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="at least one window"):
            coverage_edges(0.0, 1.0, 0)
        with pytest.raises(ValueError, match="invalid span"):
            coverage_edges(1.0, 0.0, 2)


class TestSplitTrace:
    def test_partitions_exactly(self, trace):
        ras, job = trace
        incs = split_trace(ras, job, increments=7)
        assert sum(len(i.ras) for i in incs) == len(ras)
        assert sum(len(i.job) for i in incs) == len(job)
        back = concat([i.ras.frame for i in incs if len(i.ras)])
        assert np.array_equal(back["recid"], ras.frame["recid"])

    def test_event_pinned_on_every_cut(self, trace):
        """Cut edges placed exactly on event times: each pinned event
        appears once, in the increment its time *opens*."""
        ras, job = trace
        t = ras.frame["event_time"]
        pins = [float(t[200]), float(t[700]), float(t[1200])]
        edges = [float(t[0]), *pins, np.nextafter(float(t[-1]), np.inf)]
        incs = split_trace(ras, job, edges=edges)
        assert sum(len(i.ras) for i in incs) == len(ras)
        for k, pin in enumerate(pins):
            owner = [
                i.index
                for i in incs
                if np.any(i.ras.frame["event_time"] == pin)
            ]
            assert owner == [k + 1], f"pin {k} not owned by its opener"

    def test_watermark_is_exclusive(self, trace):
        ras, job = trace
        for inc in split_trace(ras, job, increments=5):
            if len(inc.ras):
                assert float(inc.ras.frame["event_time"].max()) < inc.watermark
            if len(inc.job):
                assert float(inc.job.frame["start_time"].max()) < inc.watermark

    def test_requires_exactly_one_cut_spec(self, trace):
        ras, job = trace
        with pytest.raises(ValueError, match="exactly one"):
            split_trace(ras, job)
        with pytest.raises(ValueError, match="exactly one"):
            split_trace(ras, job, increments=2, edges=[0.0, 1.0])


class TestLogSelectionHalfOpen:
    def test_ras_boundary_event_in_one_window(self, trace):
        ras, _ = trace
        cut = float(ras.frame["event_time"][500])
        t0, t1 = ras.time_span()
        left = ras.select_time(t0, cut)
        right = ras.select_time(cut, np.nextafter(t1, np.inf))
        assert len(left) + len(right) == len(ras)
        assert not np.any(left.frame["event_time"] == cut)
        assert np.any(right.frame["event_time"] == cut)

    def test_job_boundary_start_in_one_window(self, trace):
        _, job = trace
        starts = job.frame["start_time"]
        cut = float(starts[100])
        t0, t1 = float(starts.min()), float(starts.max())
        left = job.select_time(t0, cut)
        right = job.select_time(cut, np.nextafter(t1, np.inf))
        assert len(left) + len(right) == len(job)
        assert not np.any(left.frame["start_time"] == cut)
        assert np.any(right.frame["start_time"] == cut)


class TestStorePartitionerBoundary:
    def test_boundary_pinned_events_stored_once(self, tmp_path):
        """Events exactly on every interior partition edge — including
        the span maximum — survive the store round-trip exactly once."""
        ras = make_ras(200, seed=5)
        job = make_jobs(ras, 20, seed=6)
        t0, t1 = ras.time_span()
        windows = 4
        edges = partition_edges(t0, t1, windows)
        # pin one event on each interior edge (and keep the max at t1)
        t = ras.frame["event_time"].copy()
        for k, e in enumerate(edges[1:-1]):
            t[50 * (k + 1)] = e
        ras = type(ras)(ras.frame.with_column("event_time", np.sort(t)))
        ds = ShardedDataset.create(tmp_path / "store")
        ds.add_machine_trace("bgp", ras, job, windows=windows)
        back = ds.load_ras("bgp").frame
        assert back.num_rows == len(ras)
        assert np.array_equal(
            back["event_time"].view(np.uint64),
            ras.frame["event_time"].view(np.uint64),
        )
