"""Checkpoint save/resume: bit-identical continuation, config
fingerprint enforcement, and failure modes."""

import json

import numpy as np
import pytest

from repro.core.filtering.chain import FilterChain
from repro.core.filtering.temporal import TemporalFilter
from repro.core.pipeline import CoAnalysis
from repro.stream import (
    StreamError,
    StreamingCoAnalysis,
    diff_results,
    load_checkpoint,
    save_checkpoint,
    split_trace,
)


def ingest_first(trace, k, upto):
    ras, job = trace
    runner = StreamingCoAnalysis()
    incs = split_trace(ras, job, increments=k)
    for inc in incs[:upto]:
        runner.ingest_increment(inc)
    return runner, incs


class TestSaveResume:
    def test_resume_is_bit_identical(self, trace, batch, tmp_path):
        runner, incs = ingest_first(trace, 6, 3)
        save_checkpoint(runner, tmp_path / "ckpt")
        resumed = load_checkpoint(tmp_path / "ckpt")
        assert resumed.watermark == runner.watermark
        assert resumed.increments == 3
        for inc in incs[3:]:
            resumed.ingest_increment(inc)
        assert diff_results(resumed.result(), batch) == []

    def test_resume_with_nothing_left(self, trace, batch, tmp_path):
        """All state needed for result() survives the round-trip."""
        runner, _ = ingest_first(trace, 4, 4)
        save_checkpoint(runner, tmp_path / "ckpt")
        resumed = load_checkpoint(tmp_path / "ckpt")
        assert diff_results(resumed.result(), batch) == []

    def test_checkpoint_every_increment(self, trace, batch, tmp_path):
        """Save+load between every pair of increments — the CLI's
        --checkpoint-dir cadence — still converges bit-identically."""
        ras, job = trace
        incs = split_trace(ras, job, increments=5)
        runner = StreamingCoAnalysis()
        for inc in incs:
            runner.ingest_increment(inc)
            save_checkpoint(runner, tmp_path / "ckpt")
            runner = load_checkpoint(tmp_path / "ckpt")
        assert diff_results(runner.result(), batch) == []

    def test_updates_continue_after_resume(self, trace, tmp_path):
        runner, incs = ingest_first(trace, 6, 3)
        direct = [runner.ingest_increment(inc) for inc in incs[3:]]

        fresh, _ = ingest_first(trace, 6, 3)
        save_checkpoint(fresh, tmp_path / "ckpt")
        resumed = load_checkpoint(tmp_path / "ckpt")
        replayed = [resumed.ingest_increment(inc) for inc in incs[3:]]
        for a, b in zip(direct, replayed):
            assert a.events_raw == b.events_raw
            assert a.events_flushed == b.events_flushed
            assert a.pairs_emitted == b.pairs_emitted
            assert a.interrupted_jobs == b.interrupted_jobs


class TestFailureModes:
    def test_finalized_stream_refuses_checkpoint(self, trace, tmp_path):
        runner, _ = ingest_first(trace, 2, 2)
        runner.result()
        with pytest.raises(StreamError, match="finalized"):
            save_checkpoint(runner, tmp_path / "ckpt")

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(StreamError, match="unreadable"):
            load_checkpoint(tmp_path / "nope")

    def test_wrong_version_raises(self, trace, tmp_path):
        runner, _ = ingest_first(trace, 3, 1)
        save_checkpoint(runner, tmp_path / "ckpt")
        path = tmp_path / "ckpt" / "checkpoint.json"
        index = json.loads(path.read_text())
        index["version"] = 99
        path.write_text(json.dumps(index))
        with pytest.raises(StreamError, match="version"):
            load_checkpoint(tmp_path / "ckpt")

    def test_threshold_mismatch_raises(self, trace, tmp_path):
        runner, _ = ingest_first(trace, 3, 1)
        save_checkpoint(runner, tmp_path / "ckpt")
        other = CoAnalysis(
            filters=FilterChain(temporal=TemporalFilter(threshold=60.0))
        )
        with pytest.raises(StreamError, match="thresholds do not match"):
            load_checkpoint(tmp_path / "ckpt", pipeline=other)
