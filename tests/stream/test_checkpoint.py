"""Checkpoint save/resume: bit-identical continuation, config
fingerprint enforcement, validation, and failure modes."""

import json

import numpy as np
import pytest

from repro.core.filtering.chain import FilterChain
from repro.core.filtering.temporal import TemporalFilter
from repro.core.pipeline import CoAnalysis
from repro.stream import (
    StreamError,
    StreamingCoAnalysis,
    diff_results,
    load_checkpoint,
    save_checkpoint,
    split_trace,
    validate_checkpoint,
)


def ingest_first(trace, k, upto):
    ras, job = trace
    runner = StreamingCoAnalysis()
    incs = split_trace(ras, job, increments=k)
    for inc in incs[:upto]:
        runner.ingest_increment(inc)
    return runner, incs


class TestSaveResume:
    def test_resume_is_bit_identical(self, trace, batch, tmp_path):
        runner, incs = ingest_first(trace, 6, 3)
        save_checkpoint(runner, tmp_path / "ckpt")
        resumed = load_checkpoint(tmp_path / "ckpt")
        assert resumed.watermark == runner.watermark
        assert resumed.increments == 3
        for inc in incs[3:]:
            resumed.ingest_increment(inc)
        assert diff_results(resumed.result(), batch) == []

    def test_resume_with_nothing_left(self, trace, batch, tmp_path):
        """All state needed for result() survives the round-trip."""
        runner, _ = ingest_first(trace, 4, 4)
        save_checkpoint(runner, tmp_path / "ckpt")
        resumed = load_checkpoint(tmp_path / "ckpt")
        assert diff_results(resumed.result(), batch) == []

    def test_checkpoint_every_increment(self, trace, batch, tmp_path):
        """Save+load between every pair of increments — the CLI's
        --checkpoint-dir cadence — still converges bit-identically."""
        ras, job = trace
        incs = split_trace(ras, job, increments=5)
        runner = StreamingCoAnalysis()
        for inc in incs:
            runner.ingest_increment(inc)
            save_checkpoint(runner, tmp_path / "ckpt")
            runner = load_checkpoint(tmp_path / "ckpt")
        assert diff_results(runner.result(), batch) == []

    def test_updates_continue_after_resume(self, trace, tmp_path):
        runner, incs = ingest_first(trace, 6, 3)
        direct = [runner.ingest_increment(inc) for inc in incs[3:]]

        fresh, _ = ingest_first(trace, 6, 3)
        save_checkpoint(fresh, tmp_path / "ckpt")
        resumed = load_checkpoint(tmp_path / "ckpt")
        replayed = [resumed.ingest_increment(inc) for inc in incs[3:]]
        for a, b in zip(direct, replayed):
            assert a.events_raw == b.events_raw
            assert a.events_flushed == b.events_flushed
            assert a.pairs_emitted == b.pairs_emitted
            assert a.interrupted_jobs == b.interrupted_jobs


def _flip_last_byte(path):
    raw = bytearray(path.read_bytes())
    raw[-1] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestValidateCheckpoint:
    """Offline integrity audit: every corruption maps to a class."""

    @pytest.fixture()
    def ckpt(self, trace, tmp_path):
        runner, _ = ingest_first(trace, 4, 2)
        directory = tmp_path / "ckpt"
        save_checkpoint(runner, directory)
        return directory

    def test_healthy_checkpoint_is_clean(self, ckpt):
        assert validate_checkpoint(ckpt) == []

    def test_bit_flip_in_frame_shard_is_hash_mismatch(self, ckpt):
        victim = sorted((ckpt / "survivors").glob("*.npy"))[0]
        _flip_last_byte(victim)
        problems = validate_checkpoint(ckpt)
        assert problems
        assert all(p.startswith("hash-mismatch") for p in problems)
        assert "survivors" in problems[0]

    def test_bit_flip_in_arrays_is_hash_mismatch(self, ckpt):
        _flip_last_byte(ckpt / "arrays.npz")
        problems = validate_checkpoint(ckpt)
        assert any(
            p.startswith("hash-mismatch") and "arrays.npz" in p
            for p in problems
        )

    def test_deleted_frame_dir_is_missing_file(self, ckpt):
        import shutil

        shutil.rmtree(ckpt / "jobs_all")
        problems = validate_checkpoint(ckpt)
        assert any(p.startswith("missing-file") for p in problems)

    def test_garbled_index_is_unreadable(self, ckpt):
        (ckpt / "checkpoint.json").write_text("{not json")
        problems = validate_checkpoint(ckpt)
        assert problems[0].startswith("unreadable-index")

    def test_wrong_version_is_version_mismatch(self, ckpt):
        path = ckpt / "checkpoint.json"
        index = json.loads(path.read_text())
        index["version"] = 99
        path.write_text(json.dumps(index))
        problems = validate_checkpoint(ckpt)
        assert problems[0].startswith("version-mismatch")

    def test_tampered_config_is_fingerprint_mismatch(self, ckpt):
        path = ckpt / "checkpoint.json"
        index = json.loads(path.read_text())
        index["config"]["tolerance"] = 999.0
        path.write_text(json.dumps(index))
        problems = validate_checkpoint(ckpt)
        assert any(p.startswith("fingerprint-mismatch") for p in problems)

    def test_without_hash_verification_bit_flip_passes(self, ckpt):
        """verify_hashes=False is the cheap structural-only audit."""
        victim = sorted((ckpt / "survivors").glob("*.npy"))[0]
        _flip_last_byte(victim)
        assert validate_checkpoint(ckpt, verify_hashes=False) == []


class TestFailureModes:
    def test_finalized_stream_refuses_checkpoint(self, trace, tmp_path):
        runner, _ = ingest_first(trace, 2, 2)
        runner.result()
        with pytest.raises(StreamError, match="finalized"):
            save_checkpoint(runner, tmp_path / "ckpt")

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(StreamError, match="unreadable"):
            load_checkpoint(tmp_path / "nope")

    def test_wrong_version_raises(self, trace, tmp_path):
        runner, _ = ingest_first(trace, 3, 1)
        save_checkpoint(runner, tmp_path / "ckpt")
        path = tmp_path / "ckpt" / "checkpoint.json"
        index = json.loads(path.read_text())
        index["version"] = 99
        path.write_text(json.dumps(index))
        with pytest.raises(StreamError, match="version"):
            load_checkpoint(tmp_path / "ckpt")

    def test_threshold_mismatch_raises(self, trace, tmp_path):
        runner, _ = ingest_first(trace, 3, 1)
        save_checkpoint(runner, tmp_path / "ckpt")
        other = CoAnalysis(
            filters=FilterChain(temporal=TemporalFilter(threshold=60.0))
        )
        with pytest.raises(StreamError, match="thresholds do not match"):
            load_checkpoint(tmp_path / "ckpt", pipeline=other)
