"""Streaming == batch, bit for bit.

The acceptance contract: replaying a trace in K increments through
:class:`repro.stream.StreamingCoAnalysis` reproduces the one-shot batch
pipeline exactly — filtered event frames, match products, filter stats,
Weibull fit bits and observation verdicts — for any K and any cut
placement, including cuts pinned exactly on record times, cuts inside
an open chain/causal window, and empty increments."""

import numpy as np
import pytest

from repro.core.pipeline import CoAnalysis
from repro.stream import (
    StreamError,
    StreamingCoAnalysis,
    diff_results,
    replay_trace,
    split_trace,
)

from tests.stream.conftest import make_causal_trace


def replay_edges(ras, job, edges):
    runner = StreamingCoAnalysis()
    updates = [
        runner.ingest_increment(inc)
        for inc in split_trace(ras, job, edges=edges)
    ]
    return updates, runner.result()


class TestBitIdentity:
    @pytest.mark.parametrize("k", [1, 2, 7])
    def test_equal_width_cuts(self, trace, batch, k):
        ras, job = trace
        updates, result = replay_trace(ras, job, increments=k)
        assert len(updates) == k
        assert diff_results(result, batch) == []

    def test_cut_pinned_on_event_time(self, trace, batch):
        ras, job = trace
        t = ras.frame["event_time"]
        edges = [
            float(t[0]),
            float(t[400]),
            float(t[900]),
            np.nextafter(float(max(t[-1], job.frame["start_time"].max())),
                         np.inf),
        ]
        _, result = replay_edges(ras, job, edges)
        assert diff_results(result, batch) == []

    def test_empty_increments(self, trace, batch):
        ras, job = trace
        t = ras.frame["event_time"]
        cut = float(t[700])
        hi = np.nextafter(
            float(max(t[-1], job.frame["start_time"].max())), np.inf
        )
        # duplicate edges produce two genuinely empty increments
        edges = [float(t[0]), cut, cut, cut, hi]
        updates, result = replay_edges(ras, job, edges)
        assert len(updates) == 4
        assert diff_results(result, batch) == []

    def test_fuzzed_cut_positions(self, trace, batch):
        """Random cut counts and placements — mid-chain, mid-open-
        interval, exact record boundaries — all bit-identical."""
        ras, job = trace
        t = ras.frame["event_time"]
        hi = np.nextafter(
            float(max(t[-1], job.frame["start_time"].max())), np.inf
        )
        rng = np.random.default_rng(2011)
        for trial in range(8):
            k = int(rng.integers(2, 9))
            if trial % 2 == 0:
                # exact record boundaries
                idx = np.sort(rng.choice(len(t) - 2, size=k - 1,
                                         replace=False)) + 1
                cuts = [float(t[i]) for i in idx]
            else:
                # arbitrary positions inside open intervals
                cuts = sorted(
                    float(t[0]) + rng.random(k - 1) * (float(t[-1]) - float(t[0]))
                )
            edges = [float(t[0]), *cuts, hi]
            _, result = replay_edges(ras, job, edges)
            assert diff_results(result, batch) == [], f"trial {trial}: {edges}"


class TestCausalRules:
    """The crafted trigger->follower trace actually mines a rule, so
    the incremental causality path (accumulate + finalize remap) is
    validated, not vacuously equal."""

    @pytest.fixture(scope="class")
    def causal(self):
        ras, job = make_causal_trace()
        return ras, job, CoAnalysis().run(ras, job)

    def test_batch_mines_a_rule(self, causal):
        _, _, batch = causal
        stats = batch.filter_stats
        assert stats.after_causal < stats.after_spatial

    @pytest.mark.parametrize("k", [2, 5])
    def test_stream_reproduces_rules(self, causal, k):
        ras, job, batch = causal
        pipeline = CoAnalysis()
        runner = StreamingCoAnalysis(pipeline=pipeline)
        for inc in split_trace(ras, job, increments=k):
            runner.ingest_increment(inc)
        result = runner.result()
        assert diff_results(result, batch) == []
        rules = pipeline.filters.causal.rules
        assert rules, "stream mined no causal rules"
        assert [(r.trigger, r.follower, r.support) for r in rules] == [
            ("_A", "_B", 25)
        ]

    def test_cut_inside_open_causal_window(self, causal):
        """A cut 10 s after a trigger — mid causal window, before the
        follower arrives — must not lose or double the pair."""
        ras, job, batch = causal
        t = ras.frame["event_time"]
        hi = np.nextafter(
            float(max(t[-1], job.frame["end_time"].max())), np.inf
        )
        cut = float(t[20]) + 10.0  # between an _A and its _B
        _, result = replay_edges(ras, job, [float(t[0]), cut, hi])
        assert diff_results(result, batch) == []


class TestWatermarkDiscipline:
    def test_backwards_watermark_raises(self, trace):
        ras, job = trace
        runner = StreamingCoAnalysis()
        incs = split_trace(ras, job, increments=3)
        runner.ingest_increment(incs[0])
        with pytest.raises(StreamError, match="backwards"):
            runner.ingest(incs[1].ras, incs[1].job, incs[0].watermark - 1.0)

    def test_late_record_raises(self, trace):
        ras, job = trace
        runner = StreamingCoAnalysis()
        incs = split_trace(ras, job, increments=2)
        runner.ingest_increment(incs[0])
        with pytest.raises(StreamError, match="before the previous watermark"):
            runner.ingest(incs[0].ras, incs[0].job, incs[1].watermark)

    def test_record_at_watermark_raises(self, trace):
        ras, job = trace
        inc = split_trace(ras, job, increments=1)[0]
        runner = StreamingCoAnalysis()
        with pytest.raises(StreamError, match="at or past the new watermark"):
            runner.ingest(
                inc.ras, inc.job, float(inc.ras.frame["event_time"].max())
            )

    def test_ingest_after_result_raises(self, trace):
        ras, job = trace
        runner = StreamingCoAnalysis()
        incs = split_trace(ras, job, increments=2)
        runner.ingest_increment(incs[0])
        runner.result()
        with pytest.raises(StreamError, match="finalized"):
            runner.ingest_increment(incs[1])


class TestRollingUpdates:
    def test_counts_cumulative_and_consistent(self, trace, batch):
        ras, job = trace
        updates, result = replay_trace(ras, job, increments=7)
        raw = [u.events_raw for u in updates]
        assert raw == sorted(raw)
        last = updates[-1]
        assert last.events_raw == result.filter_stats.raw
        assert last.after_temporal == result.filter_stats.after_temporal
        assert last.after_spatial == result.filter_stats.after_spatial
        assert last.watermark > float(ras.frame["event_time"].max())

    def test_weibull_refit_and_deltas(self, trace):
        ras, job = trace
        updates, _ = replay_trace(ras, job, increments=7)
        fitted = [u for u in updates if u.fit is not None]
        assert fitted, "no increment produced a Weibull refit"
        # once two consecutive fits exist the deltas become finite
        tail = [
            u
            for prev, u in zip(updates, updates[1:])
            if prev.fit is not None and u.fit is not None
        ]
        assert tail
        assert all(np.isfinite(u.shape_delta) for u in tail)
        assert all(np.isfinite(u.scale_delta) for u in tail)
