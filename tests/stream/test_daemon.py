"""The live daemon: growing-file end-to-end equivalence, degraded
feeds, checkpoint rotation with corruption fallback, supervised
restarts, and exactly-once store appends across crashes."""

import errno
import os

import numpy as np
import pytest

from repro.core.pipeline import CoAnalysis
from repro.faults.io import InjectedCrash
from repro.logs import read_job_log, read_ras_log, write_job_log, write_ras_log
from repro.stream import diff_results, frames_equal
from repro.stream.daemon import (
    CheckpointRotator,
    DaemonConfig,
    DaemonLoop,
    Supervisor,
)
from repro.stream.source import RetryPolicy
from tests.stream.conftest import make_jobs, make_ras

NO_SLEEP = lambda s: None  # noqa: E731
FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)


class GrowingTrace:
    """A (RAS, job) pair of live files grown in line-aligned segments,
    plus the batch reference computed from the *re-read* full files (the
    BGP text format truncates to microseconds; equivalence must compare
    against what the daemon could actually read)."""

    def __init__(self, tmp_path, n_ras=240, n_job=40, segments=6, seed=13):
        ras = make_ras(n_ras, seed=seed)
        job = make_jobs(ras, n_job, seed=seed + 1)
        self.full_ras = tmp_path / "full_ras.psv"
        self.full_job = tmp_path / "full_job.psv"
        write_ras_log(ras, self.full_ras)
        write_job_log(job, self.full_job)
        self.live_ras = tmp_path / "live_ras.psv"
        self.live_job = tmp_path / "live_job.psv"
        self._lines = {
            "ras": self.full_ras.read_text().splitlines(keepends=True),
            "job": self.full_job.read_text().splitlines(keepends=True),
        }
        self.segments = segments
        self.step = 0

    def grow(self):
        self.step = min(self.step + 1, self.segments)
        for table, live in (("ras", self.live_ras), ("job", self.live_job)):
            lines = self._lines[table]
            upto = len(lines) * self.step // self.segments
            live.write_text("".join(lines[:upto]), encoding="utf-8")

    @property
    def done(self):
        return self.step >= self.segments

    def batch(self):
        return CoAnalysis().run(
            read_ras_log(self.full_ras), read_job_log(self.full_job)
        )


def daemon_config(tmp_path, gt, **overrides):
    kw = dict(
        ras_path=str(gt.live_ras),
        job_path=str(gt.live_job),
        checkpoint_root=str(tmp_path / "ckpt"),
        allowed_lateness=60.0,
        poll_interval_s=0.0,
        checkpoint_every=1,
        retry=FAST_RETRY,
    )
    kw.update(overrides)
    return DaemonConfig(**kw)


def drive(loop, gt):
    """Grow the files one segment per cycle until exhausted."""
    while not gt.done:
        gt.grow()
        loop.cycle()


class TestEndToEnd:
    def test_growing_files_converge_to_batch(self, tmp_path):
        gt = GrowingTrace(tmp_path)
        loop = DaemonLoop(daemon_config(tmp_path, gt), sleep=NO_SLEEP)
        drive(loop, gt)
        assert loop.increments > 1  # genuinely incremental, not one gulp
        assert loop.checkpoints >= 1
        assert diff_results(loop.result(), gt.batch()) == []
        assert loop.bls.late_dropped == {"ras": 0, "job": 0}

    def test_live_store_appends_reassemble_files(self, tmp_path):
        from repro.store import ShardedDataset

        gt = GrowingTrace(tmp_path)
        config = daemon_config(
            tmp_path, gt, store_root=str(tmp_path / "store"), machine="bgp"
        )
        loop = DaemonLoop(config, sleep=NO_SLEEP)
        drive(loop, gt)
        loop.result()
        assert loop.store_windows > 1  # windows appended live, not once
        store = ShardedDataset.open(tmp_path / "store")
        assert frames_equal(
            store.load_ras("bgp").frame, read_ras_log(gt.full_ras).frame
        )
        assert frames_equal(
            store.load_job("bgp").frame, read_job_log(gt.full_job).frame
        )

    def test_run_exits_on_idle_with_final_checkpoint(self, tmp_path):
        gt = GrowingTrace(tmp_path, segments=1)
        gt.grow()
        config = daemon_config(tmp_path, gt, idle_exit=2)
        loop = DaemonLoop(config, sleep=NO_SLEEP)
        summary = loop.run()
        assert summary.stopped_by == "idle"
        assert summary.checkpoints >= 1
        assert (tmp_path / "ckpt" / "CURRENT").exists()

    def test_request_stop_checkpoints_and_exits(self, tmp_path):
        """The SIGTERM path: stop flag → final checkpoint → summary."""
        gt = GrowingTrace(tmp_path, segments=1)
        gt.grow()
        loop = DaemonLoop(daemon_config(tmp_path, gt), sleep=NO_SLEEP)
        loop.request_stop("signal")
        summary = loop.run()
        assert summary.stopped_by == "signal"
        assert summary.checkpoints >= 1
        rotator = CheckpointRotator(tmp_path / "ckpt")
        assert rotator.current_slot() in ("slot-a", "slot-b")


class FlakyFS:
    """EIO on a path substring while switched on; real IO otherwise."""

    def __init__(self, needle):
        self.needle = needle
        self.down = False

    def _check(self, path):
        if self.down and self.needle in str(path):
            raise OSError(errno.EIO, "injected outage", str(path))

    def stat(self, path):
        self._check(path)
        return os.stat(path)

    def open(self, path):
        self._check(path)
        return open(path, "rb")


class TestDegradedFeed:
    def test_outage_degrades_then_recovers_without_loss(self, tmp_path):
        """A feed down past the retry budget marks increments DEGRADED;
        the daemon keeps running and converges once the feed is back."""
        gt = GrowingTrace(tmp_path)
        fs = FlakyFS("live_ras")
        loop = DaemonLoop(
            daemon_config(tmp_path, gt), fs=fs, sleep=NO_SLEEP
        )
        gt.grow()
        loop.cycle()  # healthy first cycle
        fs.down = True
        for _ in range(2):
            gt.grow()
            loop.cycle()  # RAS dark, job still flowing
        fs.down = False
        drive(loop, gt)
        loop.cycle()  # one more healthy poll to pick up the backlog
        assert loop.degraded_increments == 2
        from repro.obs.metrics import get_metrics

        assert get_metrics().value("daemon.feed.degraded", table="ras")
        assert diff_results(loop.result(), gt.batch()) == []
        assert loop.bls.late_dropped == {"ras": 0, "job": 0}


def small_runner():
    ras = make_ras(40, seed=21)
    job = make_jobs(ras, 8, seed=22)
    from repro.stream import StreamingCoAnalysis

    runner = StreamingCoAnalysis()
    hi = max(
        float(ras.frame["event_time"].max()),
        float(job.frame["start_time"].max()),
    )
    runner.ingest(ras, job, watermark=float(np.nextafter(hi, np.inf)))
    return runner


class TestCheckpointRotation:
    def test_saves_alternate_slots(self, tmp_path):
        rotator = CheckpointRotator(tmp_path / "ckpt")
        first = rotator.save(small_runner())
        second = rotator.save(small_runner())
        assert {first.name, second.name} == {"slot-a", "slot-b"}
        assert rotator.current_slot() == second.name

    def test_corrupt_current_slot_falls_back(self, tmp_path):
        rotator = CheckpointRotator(tmp_path / "ckpt")
        rotator.save(small_runner())
        newest = rotator.save(small_runner())
        victim = sorted(newest.glob("survivors/*.npy"))[0]
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0xFF
        victim.write_bytes(bytes(raw))
        loaded = rotator.load_latest()
        assert loaded is not None
        _, _, _, slot_dir = loaded
        assert slot_dir.name != newest.name
        assert rotator.problems
        assert any("hash-mismatch" in p for p in rotator.problems)

    def test_both_slots_corrupt_returns_none(self, tmp_path):
        rotator = CheckpointRotator(tmp_path / "ckpt")
        for _ in range(2):
            slot = rotator.save(small_runner())
            (slot / "checkpoint.json").write_text("{torn", encoding="utf-8")
        assert rotator.load_latest() is None
        assert len(rotator.problems) == 2

    def test_empty_root_loads_nothing(self, tmp_path):
        assert CheckpointRotator(tmp_path / "ckpt").load_latest() is None


class _Stub:
    def __init__(self, exc=None, result="done"):
        self.exc = exc
        self.result = result

    def run(self):
        if self.exc is not None:
            raise self.exc
        return self.result


class TestSupervisor:
    def test_restarts_until_success(self, tmp_path):
        loops = iter(
            [_Stub(RuntimeError("boom")), _Stub(RuntimeError("boom")), _Stub()]
        )
        sup = Supervisor(lambda: next(loops), max_restarts=3, sleep=NO_SLEEP)
        assert sup.run() == "done"
        assert sup.restarts == 2

    def test_restart_budget_exhausted_reraises(self):
        sup = Supervisor(
            lambda: _Stub(RuntimeError("boom")), max_restarts=2, sleep=NO_SLEEP
        )
        with pytest.raises(RuntimeError):
            sup.run()
        assert sup.restarts == 3  # initial run + 2 restarts all failed

    def test_injected_crash_passes_through(self):
        """Kill points are BaseException: the supervisor must NOT eat
        them — only a process restart (resume from checkpoint) may."""
        sup = Supervisor(
            lambda: _Stub(InjectedCrash(7, "x")), max_restarts=99,
            sleep=NO_SLEEP,
        )
        with pytest.raises(InjectedCrash):
            sup.run()
        assert sup.restarts == 0


class TestCrashResume:
    def one_shot(self, phase_target, cycle_target):
        state = {"armed": True}

        def hook(phase, cycle):
            if state["armed"] and phase == phase_target and cycle >= cycle_target:
                state["armed"] = False
                raise InjectedCrash(cycle, phase_target)

        return hook

    def test_post_checkpoint_crash_is_store_exactly_once(self, tmp_path):
        """Crash between checkpoint and store flush: resume drops the
        already-covered backlog — no duplicated rows, none missing."""
        from repro.store import ShardedDataset

        gt = GrowingTrace(tmp_path)
        config = daemon_config(
            tmp_path, gt, store_root=str(tmp_path / "store"), machine="bgp"
        )
        loop = DaemonLoop(
            config,
            sleep=NO_SLEEP,
            crash_hook=self.one_shot("post_checkpoint", 3),
        )
        with pytest.raises(InjectedCrash):
            drive(loop, gt)
        resumed = DaemonLoop(config, sleep=NO_SLEEP)
        assert resumed.cycles > 0  # state really came from the checkpoint
        drive(resumed, gt)
        assert diff_results(resumed.result(), gt.batch()) == []
        store = ShardedDataset.open(tmp_path / "store")
        assert frames_equal(
            store.load_ras("bgp").frame, read_ras_log(gt.full_ras).frame
        )

    def test_resume_restores_counters_and_cursors(self, tmp_path):
        gt = GrowingTrace(tmp_path)
        config = daemon_config(tmp_path, gt)
        loop = DaemonLoop(
            config, sleep=NO_SLEEP, crash_hook=self.one_shot("post_flush", 2)
        )
        with pytest.raises(InjectedCrash):
            drive(loop, gt)
        resumed = DaemonLoop(config, sleep=NO_SLEEP)
        assert resumed.cycles == loop.cycles
        assert resumed.increments == loop.increments
        assert (
            resumed.feeds["ras"].tailer.state.offset
            == loop.feeds["ras"].tailer.state.offset
        )
