"""Kill-and-resume fuzzing: seeded IO fault schedules × kill points.

Every combo runs the daemon over growing files under a seeded
:class:`FaultPlan` (EIO, short reads, stalls, rotations), kills it with
an :class:`InjectedCrash` at a parametrized point, resumes a fresh
``DaemonLoop`` from whatever checkpoint survived — reusing the SAME
``FaultyFS`` so the fault schedule keeps firing across the crash — and
proves the final result is bit-identical to the batch pipeline over the
fully re-read files. 30 phase-kill combos plus 3 mid-IO-op kills.
"""

import pytest

from repro.faults.io import (
    FaultKind,
    FaultPlan,
    FaultyFS,
    InjectedCrash,
    IOFault,
)
from repro.stream import diff_results
from repro.stream.daemon import DaemonLoop
from tests.stream.test_daemon import NO_SLEEP, GrowingTrace, daemon_config

PHASES = ("poll", "ingested", "pre_checkpoint", "post_checkpoint", "post_flush")
KILL_CYCLES = (2, 4)
FAULT_SEEDS = (101, 202, 303)


@pytest.fixture(scope="module")
def batch_ref(tmp_path_factory):
    """One batch reference for every combo (the trace is seeded)."""
    return GrowingTrace(tmp_path_factory.mktemp("ref")).batch()


def one_shot(phase_target, cycle_target):
    state = {"armed": True}

    def hook(phase, cycle):
        if state["armed"] and phase == phase_target and cycle >= cycle_target:
            state["armed"] = False
            raise InjectedCrash(cycle, phase_target)

    return hook


def run_combo(tmp_path, batch_ref, fs, crash_hook):
    """Grow/crash/resume one daemon and demand batch bit-identity."""
    gt = GrowingTrace(tmp_path)
    config = daemon_config(tmp_path, gt)
    loop = DaemonLoop(config, fs=fs, sleep=NO_SLEEP, crash_hook=crash_hook)
    crashed = False
    try:
        while not gt.done:
            gt.grow()
            loop.cycle()
    except InjectedCrash:
        crashed = True
    assert crashed, "the kill point never fired"
    resumed = DaemonLoop(config, fs=fs, sleep=NO_SLEEP)
    while not gt.done:
        gt.grow()
        resumed.cycle()
    # settle: scheduled faults are consume-once, so a few extra polls
    # let any degraded feed catch up on its backlog
    for _ in range(6):
        resumed.cycle()
    assert diff_results(resumed.result(), batch_ref) == []
    assert resumed.bls.late_dropped == {"ras": 0, "job": 0}
    return resumed


@pytest.mark.parametrize("fault_seed", FAULT_SEEDS)
@pytest.mark.parametrize("kill_cycle", KILL_CYCLES)
@pytest.mark.parametrize("phase", PHASES)
def test_kill_and_resume_bit_identical(
    tmp_path, batch_ref, phase, kill_cycle, fault_seed
):
    fs = FaultyFS(
        FaultPlan.generate(fault_seed, n_faults=6, op_range=(1, 120)),
        sleep=NO_SLEEP,
    )
    run_combo(tmp_path, batch_ref, fs, one_shot(phase, kill_cycle))


@pytest.mark.parametrize("crash_op", (5, 17, 29))
def test_crash_mid_io_op_resumes(tmp_path, batch_ref, crash_op):
    """The kill can land inside the IO layer itself — mid-poll, between
    a stat and its read — not just at the loop's named phases."""
    plan = FaultPlan.generate(7, n_faults=4, op_range=(1, 80))
    plan.faults.append(IOFault(op_index=crash_op, kind=FaultKind.CRASH))
    fs = FaultyFS(plan, sleep=NO_SLEEP)
    run_combo(tmp_path, batch_ref, fs, crash_hook=None)
