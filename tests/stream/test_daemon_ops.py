"""Daemon ops integration: heartbeats, alerts, health transitions, and
the RAS-mirror round trip back through the analyzer (self-co-analysis).
"""

import numpy as np
import pytest

from repro.logs import read_ras_log
from repro.obs import probe_health, read_ops_log, validate_ops_log
from repro.obs.metrics import get_metrics
from repro.stream.daemon import DaemonLoop
from tests.stream.test_daemon import (
    NO_SLEEP,
    FlakyFS,
    GrowingTrace,
    daemon_config,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    get_metrics().reset()
    yield
    get_metrics().reset()


class TickClock:
    """A fake daemon clock the test advances one second per cycle."""

    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


def ops_config(tmp_path, gt, **overrides):
    kw = dict(
        ops_dir=str(tmp_path / "ops"),
        sample_interval_s=0.5,  # below the 1 s tick: every cycle samples
    )
    kw.update(overrides)
    return daemon_config(tmp_path, gt, **kw)


def drive(loop, gt, clock):
    while not gt.done:
        gt.grow()
        loop.cycle()
        clock.tick()


class TestOpsPlane:
    def test_ops_dir_complete_and_valid(self, tmp_path):
        gt = GrowingTrace(tmp_path)
        clock = TickClock()
        loop = DaemonLoop(
            ops_config(tmp_path, gt), sleep=NO_SLEEP, clock=clock
        )
        drive(loop, gt, clock)
        loop.result()  # final heartbeat + tail sample
        ops = tmp_path / "ops"
        assert (ops / "ops.jsonl").exists()
        assert (ops / "ops_ras.psv").exists()
        assert (ops / "health.json").exists()
        records = read_ops_log(ops / "ops.jsonl")
        assert validate_ops_log(records) == []
        heartbeats = [r for r in records if r["type"] == "heartbeat"]
        samples = [r for r in records if r["type"] == "sample"]
        assert len(heartbeats) >= loop.cycles
        assert len(samples) > 1
        # one heartbeat per cycle, timestamps on the fake clock
        assert heartbeats[-1]["heartbeat"]["cycle"] == loop.cycles

    def test_final_snapshot_probes_healthy(self, tmp_path):
        gt = GrowingTrace(tmp_path, segments=2)
        clock = TickClock()
        loop = DaemonLoop(
            ops_config(tmp_path, gt), sleep=NO_SLEEP, clock=clock
        )
        drive(loop, gt, clock)
        loop.result()
        verdict = probe_health(tmp_path / "ops" / "health.json")
        assert (verdict.status, verdict.exit_code) == ("healthy", 0)
        assert verdict.snapshot["final"] is True

    def test_feed_outage_transitions_health(self, tmp_path):
        """Deterministic fault injection: a dark feed turns heartbeats
        degraded; recovery turns them back. The exit-code contract the
        CI smoke drives, asserted at the source."""
        gt = GrowingTrace(tmp_path)
        fs = FlakyFS("live_ras")
        clock = TickClock()
        loop = DaemonLoop(
            ops_config(tmp_path, gt), fs=fs, sleep=NO_SLEEP, clock=clock
        )
        gt.grow()
        loop.cycle()  # healthy first cycle
        clock.tick()
        fs.down = True
        for _ in range(2):
            gt.grow()
            loop.cycle()  # RAS feed dark: degraded heartbeats
            clock.tick()
        fs.down = False
        drive(loop, gt, clock)
        loop.cycle()  # pick up the outage backlog
        loop.result()
        records = read_ops_log(tmp_path / "ops" / "ops.jsonl")
        statuses = [
            r["status"] for r in records if r["type"] == "heartbeat"
        ]
        assert statuses[0] == "healthy"
        assert "degraded" in statuses
        assert statuses[-1] == "healthy"
        degraded = [
            r for r in records
            if r["type"] == "heartbeat" and r["status"] == "degraded"
        ]
        assert all(
            any("feed degraded" in reason for reason in r["reasons"])
            for r in degraded
        )

    def test_alert_rule_fires_and_clears(self, tmp_path):
        gt = GrowingTrace(tmp_path)
        clock = TickClock()
        config = ops_config(
            tmp_path, gt,
            alert_rules=(
                "flow: rate(stream.released_rows) > 1 "
                "clear 0.5 severity ERROR",
            ),
        )
        loop = DaemonLoop(config, sleep=NO_SLEEP, clock=clock)
        drive(loop, gt, clock)
        # idle cycles: rate drops to zero, the alert must clear
        for _ in range(3):
            loop.cycle()
            clock.tick()
        loop.result()
        records = read_ops_log(tmp_path / "ops" / "ops.jsonl")
        alerts = [r for r in records if r["type"] == "alert"]
        kinds = [a["kind"] for a in alerts]
        # fired while rows flowed, cleared across the idle stretch; the
        # final drain may legitimately re-fire — but transitions must
        # strictly alternate (the engine cannot flap)
        assert kinds[:2] == ["firing", "cleared"]
        assert all(a != b for a, b in zip(kinds, kinds[1:]))
        assert alerts[0]["severity"] == "ERROR"
        # an ERROR alert firing makes the heartbeat unhealthy; clearing
        # it brings the status back
        statuses = [
            r["status"] for r in records if r["type"] == "heartbeat"
        ]
        assert "unhealthy" in statuses
        assert "healthy" in statuses[statuses.index("unhealthy"):]


class TestRasMirror:
    def run_daemon(self, tmp_path, **overrides):
        gt = GrowingTrace(tmp_path, segments=3)
        clock = TickClock()
        config = ops_config(tmp_path, gt, machine="bgp", **overrides)
        loop = DaemonLoop(config, sleep=NO_SLEEP, clock=clock)
        drive(loop, gt, clock)
        loop.result()
        return gt

    def test_mirror_is_strict_ras(self, tmp_path):
        self.run_daemon(
            tmp_path,
            alert_rules=("flow: rate(stream.released_rows) > 1",),
        )
        # the strict reader applies every field and cross-record check
        ras = read_ras_log(tmp_path / "ops" / "ops_ras.psv")
        frame = ras.frame
        assert frame.num_rows > 0
        recids = frame["recid"]
        assert (np.diff(recids) > 0).all()
        assert (np.diff(frame["event_time"]) >= 0).all()
        assert set(frame["component"]) == {"MMCS"}
        assert set(frame["subcomponent"]) == {"TELEMETRY"}
        assert set(frame["serialnumber"]) == {"bgp"}
        errcodes = set(frame["errcode"])
        assert "OPS_HEARTBEAT" in errcodes
        assert "OPS_ALERT_FLOW" in errcodes

    def test_mirror_feeds_repro_analyze(self, tmp_path, capsys):
        """Capstone: the system's own operational events run through
        the paper's co-analysis like any machine's RAS log."""
        from repro.cli import main

        gt = self.run_daemon(tmp_path)
        rc = main([
            "analyze",
            "--ras", str(tmp_path / "ops" / "ops_ras.psv"),
            "--job", str(gt.full_job),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CO-ANALYSIS OF RAS LOG AND JOB LOG" in out

    def test_recids_resume_across_restarts(self, tmp_path):
        """A second daemon lifetime on the same ops dir continues the
        mirror's recid/time sequence instead of restarting it."""
        from repro.obs import OpsLog

        log = OpsLog(tmp_path / "ops", machine="bgp")
        log.write_heartbeat({"cycle": 1}, t=100.0, status="healthy")
        log.write_heartbeat({"cycle": 2}, t=101.0, status="healthy")
        again = OpsLog(tmp_path / "ops", machine="bgp")  # "restart"
        again.write_heartbeat({"cycle": 1}, t=50.0, status="healthy")
        ras = read_ras_log(tmp_path / "ops" / "ops_ras.psv")
        recids = ras.frame["recid"]
        assert list(recids) == [1, 2, 3]
        # t=50 would move the mirror backwards: clamped to the last time
        assert (np.diff(ras.frame["event_time"]) >= 0).all()
