"""Bounded-lateness properties: any arrival pattern inside the horizon
converges bit-identically to batch; anything beyond it is quarantined,
counted, and never crashed on."""

import numpy as np
import pytest

from repro.core.pipeline import CoAnalysis
from repro.logs import read_ras_log
from repro.logs.job import JobLog, empty_job_log
from repro.logs.ras import RasLog, empty_ras_log
from repro.obs.metrics import get_metrics
from repro.stream import (
    BoundedLatenessStream,
    LateRecordSink,
    StreamError,
    diff_results,
)
from tests.stream.conftest import make_jobs, make_ras


def time_groups(ras, job, groups):
    """Cut both logs into equal-width half-open time slices."""
    t = ras.frame["event_time"]
    s = job.frame["start_time"]
    lo = min(float(t.min()), float(s.min()))
    hi = max(float(t.max()), float(s.max()))
    edges = np.linspace(lo, hi, groups + 1)
    edges[-1] = np.nextafter(hi, np.inf)
    width = float(edges[1] - edges[0])
    slices = [
        (
            ras.select_time(float(a), float(b)),
            job.select_time(float(a), float(b)),
        )
        for a, b in zip(edges[:-1], edges[1:])
    ]
    return slices, width


def shuffle_rows(log, cls, empty, rng):
    frame = log.frame
    if not frame.num_rows:
        return empty()
    return cls(frame.take(rng.permutation(frame.num_rows)))


def deliver(bls, slices, order, rng):
    """Feed slices in *order*, rows shuffled within each delivery, with
    the producer watermark = newest key seen so far."""
    watermark = float("-inf")
    updates = []
    for i in order:
        ras_k, job_k = slices[i]
        keys = [
            float(ras_k.frame["event_time"].max())
            if len(ras_k)
            else float("-inf"),
            float(job_k.frame["start_time"].max())
            if len(job_k)
            else float("-inf"),
        ]
        watermark = max(watermark, np.nextafter(max(keys), np.inf))
        updates.append(
            bls.ingest(
                shuffle_rows(ras_k, RasLog, empty_ras_log, rng),
                shuffle_rows(job_k, JobLog, empty_job_log, rng),
                watermark,
            )
        )
    return updates


def adjacent_swaps(n, rng):
    """A bounded-disorder permutation: displacement at most one slot."""
    order = list(range(n))
    for i in range(0, n - 1, 2):
        if rng.random() < 0.5:
            order[i], order[i + 1] = order[i + 1], order[i]
    return order


class TestWithinHorizon:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bounded_disorder_is_bit_identical(self, trace, batch, seed):
        """Adjacent-slice swaps + intra-slice shuffles, horizon = 3
        slice widths: zero drops, and the final result is bit-equal."""
        ras, job = trace
        rng = np.random.default_rng(seed)
        slices, width = time_groups(ras, job, 20)
        bls = BoundedLatenessStream(allowed_lateness=3.0 * width)
        updates = deliver(bls, slices, adjacent_swaps(len(slices), rng), rng)
        assert sum(sum(u.dropped.values()) for u in updates) == 0
        # disorder was real (late-but-mergeable rows) and the stream
        # still released work incrementally, not only at the end
        assert sum(sum(u.merged_late.values()) for u in updates) > 0
        assert any(u.update is not None for u in updates)
        assert diff_results(bls.result(), batch) == []

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_full_shuffle_inside_full_span_horizon(self, trace, batch, seed):
        """With the horizon covering the whole trace, ANY arrival order
        converges bit-identically."""
        ras, job = trace
        rng = np.random.default_rng(seed)
        slices, width = time_groups(ras, job, 12)
        span = 12 * width
        bls = BoundedLatenessStream(allowed_lateness=span + 1.0)
        order = list(rng.permutation(len(slices)))
        updates = deliver(bls, slices, order, rng)
        assert sum(sum(u.dropped.values()) for u in updates) == 0
        assert diff_results(bls.result(), batch) == []

    def test_in_order_zero_lateness_matches_strict_replay(
        self, trace, batch
    ):
        """allowed_lateness=0 with ordered arrivals degenerates to the
        strict streaming contract."""
        ras, job = trace
        rng = np.random.default_rng(0)
        slices, _ = time_groups(ras, job, 8)
        bls = BoundedLatenessStream(allowed_lateness=0.0)
        # in order, and rows inside each slice kept sorted
        watermark = float("-inf")
        for ras_k, job_k in slices:
            keys = [
                float(ras_k.frame["event_time"].max())
                if len(ras_k)
                else float("-inf"),
                float(job_k.frame["start_time"].max())
                if len(job_k)
                else float("-inf"),
            ]
            watermark = max(watermark, np.nextafter(max(keys), np.inf))
            bls.ingest(ras_k, job_k, watermark)
        assert diff_results(bls.result(), batch) == []


def stale_ras_record(ras, recid=999_999):
    """A copy of the oldest RAS row under a fresh recid."""
    row = ras.frame.take(np.array([0]))
    return RasLog(
        row.with_column("recid", np.array([recid], dtype=np.int64))
    )


class TestBeyondHorizon:
    def test_too_late_record_dropped_never_crashes(self, trace):
        ras, job = trace
        slices, width = time_groups(ras, job, 10)
        bls = BoundedLatenessStream(allowed_lateness=0.0)
        deliver(bls, slices, range(len(slices)), np.random.default_rng(0))
        stale = stale_ras_record(ras)
        update = bls.ingest(stale, empty_job_log(), bls.producer_watermark)
        assert update.dropped == {"ras": 1, "job": 0}
        assert bls.late_dropped["ras"] == 1

    def test_result_is_batch_without_the_dropped_record(self, trace, batch):
        """Dropping changes the result exactly as if the record had
        been absent from the batch input — the honest semantics."""
        ras, job = trace
        slices, _ = time_groups(ras, job, 10)
        bls = BoundedLatenessStream(allowed_lateness=0.0)
        deliver(bls, slices, range(len(slices)), np.random.default_rng(0))
        bls.ingest(
            stale_ras_record(ras), empty_job_log(), bls.producer_watermark
        )
        assert diff_results(bls.result(), batch) == []

    def test_sink_quarantines_readable_records(self, trace, tmp_path):
        ras, job = trace
        slices, _ = time_groups(ras, job, 10)
        sink = LateRecordSink(tmp_path / "late")
        bls = BoundedLatenessStream(allowed_lateness=0.0, sink=sink)
        deliver(bls, slices, range(len(slices)), np.random.default_rng(0))
        for recid in (999_000, 999_001):
            bls.ingest(
                stale_ras_record(ras, recid),
                empty_job_log(),
                bls.producer_watermark,
            )
        assert sink.written == {"ras": 2, "job": 0}
        quarantined = read_ras_log(sink.path_for("ras"))
        assert sorted(quarantined.frame["recid"]) == [999_000, 999_001]
        # appends share one header: both drops landed in one file
        header_count = sum(
            1
            for line in sink.path_for("ras").read_text().splitlines()
            if line.startswith("recid")
        )
        assert header_count == 1

    def test_drop_metric_counts(self, trace):
        ras, job = trace
        registry = get_metrics()
        before = registry.value("stream.late_dropped", table="ras") or 0
        slices, _ = time_groups(ras, job, 6)
        bls = BoundedLatenessStream(allowed_lateness=0.0)
        deliver(bls, slices, range(len(slices)), np.random.default_rng(0))
        bls.ingest(
            stale_ras_record(ras), empty_job_log(), bls.producer_watermark
        )
        after = registry.value("stream.late_dropped", table="ras")
        assert after == before + 1


class TestContract:
    def test_watermark_must_not_regress(self, trace):
        ras, job = trace
        bls = BoundedLatenessStream(allowed_lateness=10.0)
        bls.ingest(empty_ras_log(), empty_job_log(), 100.0)
        with pytest.raises(StreamError, match="backwards"):
            bls.ingest(empty_ras_log(), empty_job_log(), 99.0)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BoundedLatenessStream(allowed_lateness=-1.0)

    def test_update_reports_buffered_rows(self):
        ras = make_ras(50, seed=8)
        job = make_jobs(ras, 10, seed=8)
        hi = float(
            max(ras.frame["event_time"].max(), job.frame["start_time"].max())
        )
        bls = BoundedLatenessStream(allowed_lateness=1e9)
        update = bls.ingest(ras, job, np.nextafter(hi, np.inf))
        # horizon exceeds the span: everything is still buffered
        assert update.buffered == 60
        assert len(update.released_ras) == 0
        assert len(update.released_job) == 0

    def test_state_roundtrip_preserves_buffer_and_counters(self):
        ras = make_ras(50, seed=8)
        job = make_jobs(ras, 10, seed=8)
        hi = float(
            max(ras.frame["event_time"].max(), job.frame["start_time"].max())
        )
        bls = BoundedLatenessStream(allowed_lateness=1e9)
        bls.ingest(ras, job, np.nextafter(hi, np.inf))

        clone = BoundedLatenessStream()
        clone.restore(bls.state_dict(), bls.buffer_frames())
        assert clone.allowed_lateness == 1e9
        assert clone.producer_watermark == bls.producer_watermark
        assert clone.buffered_rows == 60
        assert diff_results(clone.result(), bls.result()) == []
