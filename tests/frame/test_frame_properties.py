"""Property-based tests for the frame substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Frame, concat
from repro.frame.column import factorize_many
from repro.frame.io import from_string, to_string

# Strategy: a small frame with an int key, a string key and a float value.
_keys = st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=40)
_safe_text = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N"), max_codepoint=0x2FF
    ),
    min_size=0,
    max_size=6,
)


@st.composite
def frames(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    return Frame(
        {
            "k": draw(
                st.lists(
                    st.integers(min_value=-3, max_value=3), min_size=n, max_size=n
                )
            ),
            "s": np.array(
                draw(st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n)),
                dtype=object,
            ),
            "v": draw(
                st.lists(
                    st.floats(
                        allow_nan=False, allow_infinity=False, width=32
                    ),
                    min_size=n,
                    max_size=n,
                )
            ),
        }
    )


@given(frames())
def test_filter_take_equivalence(f):
    """filter(mask) and take(where(mask)) give identical frames."""
    mask = f["k"] > 0
    a, b = f.filter(mask), f.take(np.flatnonzero(mask))
    for c in f.columns:
        assert (a[c] == b[c]).all()


@given(frames())
def test_sort_is_permutation(f):
    s = f.sort_by("k", "s")
    assert sorted(s["k"]) == sorted(f["k"])
    ks = list(s["k"])
    assert ks == sorted(ks)


@given(frames())
def test_groupby_sizes_sum_to_rows(f):
    sizes = f.groupby(["k", "s"]).size()
    assert sizes["count"].sum() == f.num_rows if f.num_rows else True


@given(frames())
def test_groupby_sum_matches_total(f):
    out = f.groupby("k").agg(s=("v", "sum"))
    if f.num_rows:
        assert np.isclose(out["s"].sum(), f["v"].sum())


@given(frames())
def test_groupby_min_max_bound_mean(f):
    out = f.groupby("k").agg(lo=("v", "min"), hi=("v", "max"), m=("v", "mean"))
    assert (out["lo"] <= out["hi"]).all()
    assert (out["m"] >= out["lo"] - 1e-9).all()
    assert (out["m"] <= out["hi"] + 1e-9).all()


@given(frames())
def test_factorize_many_row_identity(f):
    """Two rows share a code iff all key columns agree."""
    if not f.num_rows:
        return
    codes, n = factorize_many([f["k"], f["s"]])
    assert codes.max() == n - 1
    pairs = list(zip(f["k"], f["s"]))
    for i in range(min(len(pairs), 15)):
        for j in range(i + 1, min(len(pairs), 15)):
            assert (codes[i] == codes[j]) == (pairs[i] == pairs[j])


@given(frames())
@settings(max_examples=50)
def test_io_roundtrip(f):
    back = from_string(to_string(f))
    assert back.num_rows == f.num_rows
    if f.num_rows:
        for c in f.columns:
            assert (back[c] == f[c]).all()


@given(frames(), frames())
@settings(max_examples=50)
def test_concat_length(f, g):
    assert concat([f, g]).num_rows == f.num_rows + g.num_rows


@given(frames())
def test_inner_join_self_on_unique_key(f):
    """Joining on a made-unique key returns the same number of rows."""
    f = f.with_column("uid", np.arange(f.num_rows))
    out = f.join(f.select(["uid"]).with_column("flag", np.ones(f.num_rows)), on="uid")
    assert out.num_rows == f.num_rows


@given(frames())
def test_left_join_never_drops_left_rows(f):
    right = Frame({"k": [0, 1], "extra": [1.0, 2.0]})
    out = f.join(right, on="k", how="left")
    assert out.num_rows >= f.num_rows


@given(frames())
def test_value_counts_total(f):
    if f.num_rows:
        vc = f.value_counts("s")
        assert vc["count"].sum() == f.num_rows
