"""Unit tests for column coercion and factorization."""

import numpy as np
import pytest

from repro.frame.column import (
    as_column,
    factorize,
    factorize_many,
    is_float_kind,
    is_integer_kind,
    is_string_kind,
)


class TestAsColumn:
    def test_list_of_ints(self):
        col = as_column([1, 2, 3])
        assert col.dtype.kind == "i"
        assert list(col) == [1, 2, 3]

    def test_list_of_floats(self):
        col = as_column([1.5, 2.5])
        assert col.dtype.kind == "f"

    def test_list_of_strings_becomes_object(self):
        col = as_column(["a", "bb"])
        assert col.dtype.kind == "O"
        assert list(col) == ["a", "bb"]

    def test_unicode_array_normalized_to_object(self):
        col = as_column(np.array(["a", "bb"], dtype="U2"))
        assert col.dtype.kind == "O"

    def test_object_assignment_does_not_truncate(self):
        col = as_column(["a", "bb"])
        col[0] = "a-very-long-string"
        assert col[0] == "a-very-long-string"

    def test_bool_column(self):
        col = as_column([True, False])
        assert col.dtype == bool

    def test_2d_rejected(self):
        with pytest.raises(TypeError, match="1-D"):
            as_column(np.zeros((2, 2)))

    def test_mixed_object_rejected(self):
        with pytest.raises(TypeError, match="non-string"):
            as_column(np.array(["a", 1], dtype=object))

    def test_empty(self):
        assert len(as_column([])) == 0


class TestKindPredicates:
    def test_string(self):
        assert is_string_kind(as_column(["a"]))
        assert not is_string_kind(as_column([1]))

    def test_integer(self):
        assert is_integer_kind(as_column([1]))
        assert not is_integer_kind(as_column([1.0]))

    def test_float(self):
        assert is_float_kind(as_column([1.0]))
        assert not is_float_kind(as_column([1]))


class TestFactorize:
    def test_roundtrip(self):
        arr = np.array([3, 1, 3, 2, 1])
        codes, uniques = factorize(arr)
        assert (uniques[codes] == arr).all()

    def test_codes_dense_and_sorted(self):
        codes, uniques = factorize(np.array([30, 10, 20]))
        assert list(uniques) == [10, 20, 30]
        assert list(codes) == [2, 0, 1]

    def test_strings(self):
        codes, uniques = factorize(as_column(["b", "a", "b"]))
        assert list(uniques) == ["a", "b"]
        assert list(codes) == [1, 0, 1]


class TestFactorizeMany:
    def test_pairs_distinguished(self):
        a = np.array([1, 1, 2, 2])
        b = as_column(["x", "y", "x", "x"])
        codes, n = factorize_many([a, b])
        assert n == 3
        assert codes[2] == codes[3]
        assert len({codes[0], codes[1], codes[2]}) == 3

    def test_single_key_matches_factorize(self):
        arr = np.array([5, 5, 7])
        codes, n = factorize_many([arr])
        assert n == 2
        assert list(codes) == [0, 0, 1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="share a length"):
            factorize_many([np.array([1]), np.array([1, 2])])

    def test_empty_key_list_rejected(self):
        with pytest.raises(ValueError):
            factorize_many([])

    def test_empty_arrays(self):
        codes, n = factorize_many([np.array([], dtype=np.int64)])
        assert n == 0
        assert len(codes) == 0

    def test_lexicographic_order(self):
        a = np.array([2, 1, 1])
        b = np.array([0, 9, 0])
        codes, n = factorize_many([a, b])
        # sorted tuples: (1,0) < (1,9) < (2,0)
        assert list(codes) == [2, 1, 0]


class TestFirstOccurrenceMask:
    def test_keeps_first_of_each_value(self):
        from repro.frame.column import first_occurrence_mask

        mask = first_occurrence_mask(np.array([3, 1, 3, 2, 1, 3]))
        assert list(mask) == [True, True, False, True, False, False]

    def test_object_values(self):
        from repro.frame.column import first_occurrence_mask

        mask = first_occurrence_mask(np.array(["b", "a", "b"], dtype=object))
        assert list(mask) == [True, True, False]

    def test_empty(self):
        from repro.frame.column import first_occurrence_mask

        assert list(first_occurrence_mask(np.array([]))) == []

    def test_all_unique(self):
        from repro.frame.column import first_occurrence_mask

        assert first_occurrence_mask(np.arange(5)).all()

    def test_keep_last_via_reversal(self):
        from repro.frame.column import first_occurrence_mask

        values = np.array([1, 2, 1, 2, 3])
        keep_last = first_occurrence_mask(values[::-1])[::-1]
        assert list(values[keep_last]) == [1, 2, 3]
        assert list(np.flatnonzero(keep_last)) == [2, 3, 4]
