"""No-op fast paths: all-True filters and full-column selects return
``self`` instead of copying — safe because frames are immutable by
convention, and proven safe here by regression."""

import numpy as np
import pytest

from repro.frame import Frame


@pytest.fixture()
def frame():
    return Frame(
        {
            "a": np.arange(6, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 6),
            "s": np.array(list("abcdef"), dtype=object),
        }
    )


class TestFilterFastPath:
    def test_all_true_returns_self(self, frame):
        assert frame.filter(np.ones(6, dtype=bool)) is frame

    def test_partial_mask_still_copies(self, frame):
        mask = np.array([True, False, True, True, True, True])
        out = frame.filter(mask)
        assert out is not frame
        assert out.num_rows == 5
        assert frame.num_rows == 6

    def test_validation_still_runs_before_fast_path(self, frame):
        with pytest.raises(TypeError):
            frame.filter(np.ones(6, dtype=np.int64))
        with pytest.raises(ValueError):
            frame.filter(np.ones(5, dtype=bool))

    def test_shared_result_is_immutable_safe(self, frame):
        # downstream builders on the shared result must not leak back
        # into the original (regression for the sharing fast path)
        shared = frame.filter(np.ones(6, dtype=bool))
        grown = shared.with_column("z", np.zeros(6))
        assert "z" not in frame
        assert grown is not frame
        dropped = shared.select(["a"])
        assert frame.columns == ["a", "b", "s"]
        assert dropped.columns == ["a"]

    def test_empty_frame_all_true(self):
        empty = Frame({"a": np.array([], dtype=np.int64)})
        assert empty.filter(np.array([], dtype=bool)) is empty


class TestSelectFastPath:
    def test_full_select_in_order_returns_self(self, frame):
        assert frame.select(["a", "b", "s"]) is frame
        assert frame.select(frame.columns) is frame

    def test_reordered_full_select_copies(self, frame):
        out = frame.select(["s", "a", "b"])
        assert out is not frame
        assert out.columns == ["s", "a", "b"]

    def test_subset_select_copies_frame_not_arrays(self, frame):
        out = frame.select(["a", "b"])
        assert out is not frame
        # projection stays zero-copy: the column arrays are shared
        assert out["a"] is frame["a"]

    def test_unknown_column_still_raises(self, frame):
        with pytest.raises(KeyError):
            frame.select(["a", "zzz"])
