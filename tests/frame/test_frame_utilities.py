"""Unit tests for the frame convenience utilities."""

import numpy as np
import pytest

from repro.frame import Frame


@pytest.fixture
def f():
    return Frame(
        {
            "k": [1, 1, 2, 2, 3],
            "s": ["a", "a", "b", "b", "c"],
            "v": [10.0, 10.0, 20.0, 21.0, 30.0],
        }
    )


class TestWithColumns:
    def test_adds_multiple(self, f):
        out = f.with_columns({"x": np.zeros(5), "y": np.ones(5)})
        assert "x" in out and "y" in out
        assert "x" not in f

    def test_replacement_order(self, f):
        out = f.with_columns({"v": f["v"] * 2, "w": np.arange(5)})
        assert out["v"][0] == 20.0


class TestDistinct:
    def test_all_columns(self, f):
        assert f.distinct().num_rows == 4  # one exact duplicate row

    def test_subset(self, f):
        out = f.distinct(subset=["k"])
        assert out.num_rows == 3
        assert list(out["v"]) == [10.0, 20.0, 30.0]  # first kept

    def test_keeps_first_in_row_order(self):
        f = Frame({"k": [2, 1, 2], "v": [100, 200, 300]})
        out = f.distinct(subset=["k"])
        assert list(out["v"]) == [100, 200]

    def test_empty_subset_is_identity(self, f):
        assert f.distinct(subset=[]).num_rows == f.num_rows


class TestQuantile:
    def test_median(self, f):
        assert f.quantile("v", 0.5) == 20.0

    def test_extremes(self, f):
        assert f.quantile("v", 0.0) == 10.0
        assert f.quantile("v", 1.0) == 30.0

    def test_string_column_rejected(self, f):
        with pytest.raises(TypeError):
            f.quantile("s", 0.5)

    def test_empty_rejected(self):
        empty = Frame({"v": np.array([], dtype=np.float64)})
        with pytest.raises(ValueError):
            empty.quantile("v", 0.5)


class TestDescribe:
    def test_only_numeric_columns(self, f):
        d = f.describe()
        assert set(d["column"]) == {"k", "v"}

    def test_statistics(self, f):
        d = f.describe()
        row = {r["column"]: r for r in d.to_rows()}["v"]
        assert row["count"] == 5
        assert row["min"] == 10.0
        assert row["max"] == 30.0
        assert row["median"] == 20.0
        assert row["mean"] == pytest.approx(18.2)

    def test_empty_frame(self):
        assert Frame().describe().num_rows == 0
