"""Unit tests for delimited frame io."""

import numpy as np
import pytest

from repro.frame import Frame
from repro.frame.io import from_string, read_delimited, to_string, write_delimited


@pytest.fixture
def mixed():
    return Frame(
        {
            "recid": [1, 2, 3],
            "msg": ["kernel panic", "ddr error", "ok"],
            "t": [1.5, 2.25, 1e-9],
            "fatal": [True, True, False],
        }
    )


class TestRoundTrip:
    def test_types_preserved(self, mixed):
        back = from_string(to_string(mixed))
        assert back.dtypes()["recid"].kind == "i"
        assert back.dtypes()["t"].kind == "f"
        assert back.dtypes()["fatal"].kind == "b"
        assert back.dtypes()["msg"].kind == "O"

    def test_values_preserved(self, mixed):
        back = from_string(to_string(mixed))
        for c in mixed.columns:
            assert (back[c] == mixed[c]).all()

    def test_float_precision_exact(self):
        f = Frame({"x": [0.1 + 0.2, 1e300, -1e-300]})
        back = from_string(to_string(f))
        assert (back["x"] == f["x"]).all()

    def test_file_roundtrip(self, mixed, tmp_path):
        p = tmp_path / "log.psv"
        write_delimited(mixed, p)
        back = read_delimited(p)
        assert back.num_rows == 3

    def test_empty_frame(self):
        assert from_string(to_string(Frame())).num_rows == 0

    def test_zero_row_frame(self):
        f = Frame({"a": np.array([], dtype=np.int64)})
        back = from_string(to_string(f))
        assert back.num_rows == 0
        assert back.columns == ["a"]


class TestValidation:
    def test_separator_in_cell_roundtrips(self):
        f = Frame({"msg": ["bad|cell"]})
        back = from_string(to_string(f))
        assert back["msg"][0] == "bad|cell"
        # the escaped on-disk form still keeps one row per record
        assert to_string(f).count("\n") == 2

    def test_newline_in_cell_roundtrips(self):
        f = Frame({"msg": ["bad\ncell", "cr\rcell"]})
        back = from_string(to_string(f))
        assert back["msg"][0] == "bad\ncell"
        assert back["msg"][1] == "cr\rcell"

    def test_backslash_escape_sequences_roundtrip(self):
        # adversarial mix: literal backslashes adjacent to chars that
        # look like escape codes must not be mis-unescaped
        values = ["\\", "\\p", "\\n", "a\\|b", "\\\\n", "ends with \\"]
        f = Frame({"msg": values})
        back = from_string(to_string(f))
        assert list(back["msg"]) == values

    def test_escape_roundtrip_property(self):
        # property-style sweep: random strings over the adversarial
        # alphabet (separator, newline, CR, backslash, escape letters)
        rng = np.random.default_rng(42)
        alphabet = list("|\\nrp\n\rax")
        values = [
            "".join(
                alphabet[i]
                for i in rng.integers(0, len(alphabet), size=length)
            )
            for length in rng.integers(0, 24, size=200)
            # blank-only cells are indistinguishable from empty, fine
        ]
        f = Frame({"msg": values})
        back = from_string(to_string(f))
        assert list(back["msg"]) == values

    def test_alternate_separator(self):
        f = Frame({"msg": ["has|pipe"]})
        back = from_string(to_string(f, sep="\t"), sep="\t")
        assert back["msg"][0] == "has|pipe"

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            from_string("a:int|b:int\n1|2\n3\n")

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            from_string("a:complex\n")

    def test_colon_in_column_name(self):
        f = Frame({"weird:name": [1]})
        back = from_string(to_string(f))
        assert back.columns == ["weird:name"]


class TestTolerantDecoding:
    def test_utf8_bom_tolerated(self, mixed, tmp_path):
        p = tmp_path / "bom.psv"
        p.write_bytes(b"\xef\xbb\xbf" + to_string(mixed).encode("utf-8"))
        back = read_delimited(p)
        assert back.columns == mixed.columns
        assert back.num_rows == 3

    def test_crlf_line_endings_tolerated(self, mixed, tmp_path):
        p = tmp_path / "crlf.psv"
        p.write_bytes(
            to_string(mixed).replace("\n", "\r\n").encode("utf-8")
        )
        back = read_delimited(p)
        assert back.num_rows == 3
        for c in mixed.columns:
            assert (back[c] == mixed[c]).all()


class TestFloatBitRoundTrip:
    """Serialization is repr-based (shortest round-tripping decimal),
    so every IEEE-754 double — specials included — survives write/read
    with its exact bit pattern. Regression for the old '%.17g'
    formatter that collapsed NaN signs and spelled -0.0 ambiguously."""

    def _specials(self):
        return np.array(
            [
                0.1,
                0.1 + 0.2,
                -0.0,
                0.0,
                float("inf"),
                float("-inf"),
                float("nan"),
                -float("nan"),
                5e-324,  # smallest subnormal
                1.7976931348623157e308,  # largest finite
                1 / 3,
            ],
            dtype=np.float64,
        )

    def test_string_roundtrip_is_bit_identical(self):
        f = Frame({"x": self._specials()})
        back = from_string(to_string(f))
        assert back["x"].dtype == np.float64
        assert np.array_equal(
            back["x"].view(np.uint64), f["x"].view(np.uint64)
        )

    def test_file_roundtrip_is_bit_identical(self, tmp_path):
        f = Frame({"x": self._specials()})
        p = tmp_path / "floats.psv"
        write_delimited(f, p)
        back = read_delimited(p)
        assert np.array_equal(
            back["x"].view(np.uint64), f["x"].view(np.uint64)
        )

    def test_nan_sign_preserved(self):
        from repro.frame.io import format_float

        assert format_float(float("nan")) == "nan"
        assert format_float(-float("nan")) == "-nan"
        assert np.signbit(float("-nan"))

    def test_negative_zero_distinguished(self):
        from repro.frame.io import format_float

        assert format_float(-0.0) == "-0.0"
        assert format_float(0.0) == "0.0"
