"""Unit tests for the Frame container."""

import numpy as np
import pytest

from repro.frame import Frame, concat


@pytest.fixture
def jobs():
    return Frame(
        {
            "job_id": [4, 1, 3, 2, 5],
            "user": ["alice", "bob", "alice", "carol", "bob"],
            "size": [64, 1, 16, 1, 4],
            "runtime": [100.0, 50.0, 200.0, 25.0, 75.0],
        }
    )


class TestConstruction:
    def test_empty(self):
        f = Frame()
        assert f.num_rows == 0
        assert f.num_columns == 0
        assert len(f) == 0

    def test_columns_order_preserved(self, jobs):
        assert jobs.columns == ["job_id", "user", "size", "runtime"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            Frame({"a": [1, 2], "b": [1]})

    def test_from_rows_roundtrip(self, jobs):
        f2 = Frame.from_rows(jobs.to_rows())
        for c in jobs.columns:
            assert (f2.col(c) == jobs.col(c)).all()

    def test_from_rows_empty_with_columns(self):
        f = Frame.from_rows([], columns=["a", "b"])
        assert f.columns == ["a", "b"]
        assert f.num_rows == 0

    def test_row_unboxes_scalars(self, jobs):
        r = jobs.row(0)
        assert isinstance(r["job_id"], int)
        assert isinstance(r["runtime"], float)
        assert r["user"] == "alice"

    def test_repr_mentions_row_count(self, jobs):
        assert "5 rows" in repr(jobs)


class TestAccess:
    def test_col_missing_raises_with_names(self, jobs):
        with pytest.raises(KeyError, match="job_id"):
            jobs.col("nope")

    def test_getitem_str(self, jobs):
        assert (jobs["size"] == jobs.col("size")).all()

    def test_getitem_list_projects(self, jobs):
        sub = jobs[["user", "size"]]
        assert sub.columns == ["user", "size"]
        assert sub.num_rows == 5

    def test_getitem_mask(self, jobs):
        sub = jobs[jobs["size"] > 8]
        assert sub.num_rows == 2

    def test_getitem_indices(self, jobs):
        sub = jobs[np.array([0, 0, 1])]
        assert list(sub["job_id"]) == [4, 4, 1]

    def test_contains(self, jobs):
        assert "user" in jobs
        assert "nope" not in jobs


class TestDerivation:
    def test_with_column_adds(self, jobs):
        f2 = jobs.with_column("midplanes", jobs["size"] // 1)
        assert "midplanes" in f2
        assert "midplanes" not in jobs  # original untouched

    def test_with_column_replaces(self, jobs):
        f2 = jobs.with_column("size", jobs["size"] * 2)
        assert f2["size"][0] == 128
        assert jobs["size"][0] == 64

    def test_with_column_length_checked(self, jobs):
        with pytest.raises(ValueError):
            jobs.with_column("x", [1, 2])

    def test_drop(self, jobs):
        f2 = jobs.drop("runtime", "user")
        assert f2.columns == ["job_id", "size"]

    def test_drop_missing_raises(self, jobs):
        with pytest.raises(KeyError):
            jobs.drop("nope")

    def test_rename(self, jobs):
        f2 = jobs.rename({"user": "owner"})
        assert "owner" in f2 and "user" not in f2

    def test_rename_collision_rejected(self, jobs):
        with pytest.raises(ValueError, match="collapse"):
            jobs.rename({"user": "size"})


class TestRowOps:
    def test_filter(self, jobs):
        small = jobs.filter(jobs["size"] <= 4)
        assert set(small["job_id"]) == {1, 2, 5}

    def test_filter_requires_bool(self, jobs):
        with pytest.raises(TypeError):
            jobs.filter(np.array([1, 0, 1, 0, 1]))

    def test_filter_length_checked(self, jobs):
        with pytest.raises(ValueError):
            jobs.filter(np.array([True]))

    def test_take_repeats(self, jobs):
        f2 = jobs.take(np.array([1, 1]))
        assert list(f2["user"]) == ["bob", "bob"]

    def test_sort_single_key(self, jobs):
        assert list(jobs.sort_by("job_id")["job_id"]) == [1, 2, 3, 4, 5]

    def test_sort_descending(self, jobs):
        assert list(jobs.sort_by("job_id", ascending=False)["job_id"]) == [5, 4, 3, 2, 1]

    def test_sort_multi_key_primary_first(self, jobs):
        s = jobs.sort_by("user", "size")
        assert list(s["user"]) == ["alice", "alice", "bob", "bob", "carol"]
        alice = s.filter(s.mask_eq("user", "alice"))
        assert list(alice["size"]) == [16, 64]

    def test_sort_is_stable(self):
        f = Frame({"k": [1, 1, 1], "v": [3, 1, 2]})
        assert list(f.sort_by("k")["v"]) == [3, 1, 2]

    def test_head_tail(self, jobs):
        assert jobs.head(2).num_rows == 2
        assert list(jobs.tail(1)["job_id"]) == [5]

    def test_head_beyond_length(self, jobs):
        assert jobs.head(100).num_rows == 5


class TestSummaries:
    def test_unique_sorted(self, jobs):
        assert list(jobs.unique("user")) == ["alice", "bob", "carol"]

    def test_nunique(self, jobs):
        assert jobs.nunique("user") == 3

    def test_value_counts_descending(self, jobs):
        vc = jobs.value_counts("user")
        counts = list(vc["count"])
        assert counts == sorted(counts, reverse=True)
        assert vc.row(0)["count"] == 2

    def test_mask_isin_strings(self, jobs):
        m = jobs.mask_isin("user", ["alice", "carol"])
        assert m.sum() == 3

    def test_mask_isin_ints(self, jobs):
        m = jobs.mask_isin("size", [1])
        assert m.sum() == 2

    def test_mask_isin_empty(self, jobs):
        assert jobs.mask_isin("user", []).sum() == 0

    def test_mask_eq(self, jobs):
        assert jobs.mask_eq("user", "bob").sum() == 2

    def test_assign_by(self, jobs):
        f2 = jobs.assign_by("wide", lambda r: r["size"] >= 16)
        assert f2["wide"].sum() == 2


class TestConcat:
    def test_concat_stacks(self, jobs):
        both = concat([jobs, jobs])
        assert both.num_rows == 10

    def test_concat_empty_list(self):
        assert concat([]).num_rows == 0

    def test_concat_mismatch_rejected(self, jobs):
        with pytest.raises(ValueError, match="mismatch"):
            concat([jobs, Frame({"x": [1]})])

    def test_concat_skips_empty_frames(self, jobs):
        assert concat([Frame(), jobs]).num_rows == 5


class TestFromRowsDtypes:
    def test_empty_with_dtype_hints(self):
        f = Frame.from_rows(
            [],
            columns=["id", "name", "t"],
            dtypes={"id": np.int64, "name": object, "t": np.float64},
        )
        assert f.num_rows == 0
        assert f["id"].dtype == np.int64
        assert f["name"].dtype == object
        assert f["t"].dtype == np.float64

    def test_empty_defaults_to_float64(self):
        f = Frame.from_rows([], columns=["x", "y"])
        assert f["x"].dtype == np.float64
        assert f["y"].dtype == np.float64

    def test_nonempty_rows_honor_hints(self):
        # the hint pins the dtype whether or not rows are present —
        # before the shard-merge fix it was silently ignored here
        f = Frame.from_rows(
            [{"id": 1}, {"id": 2}], columns=["id"], dtypes={"id": np.float64}
        )
        assert f["id"].dtype == np.float64
        assert list(f["id"]) == [1.0, 2.0]

    def test_nonempty_rows_without_hints_keep_inference(self):
        f = Frame.from_rows([{"id": 1}, {"id": 2}], columns=["id"])
        assert f["id"].dtype == np.int64

    def test_all_null_column_with_float_hint_becomes_nan(self):
        # empty shards merge as None cells; a float hint keeps the
        # column numeric instead of drifting to object dtype
        f = Frame.from_rows(
            [{"m": "a", "x": None}, {"m": "b", "x": None}],
            columns=["m", "x"],
            dtypes={"m": object, "x": np.float64},
        )
        assert f["x"].dtype == np.float64
        assert np.isnan(f["x"]).all()

    def test_partial_null_column_with_float_hint(self):
        f = Frame.from_rows(
            [{"x": 1.5}, {"x": None}], columns=["x"], dtypes={"x": np.float64}
        )
        assert f["x"].dtype == np.float64
        assert f["x"][0] == 1.5 and np.isnan(f["x"][1])

    def test_null_under_int_hint_raises(self):
        # int64 cannot represent null: silent promotion to float64 was
        # the dtype-drift bug, and silently dropping the hint was worse
        with pytest.raises(ValueError, match="null"):
            Frame.from_rows(
                [{"n": 1}, {"n": None}], columns=["n"], dtypes={"n": np.int64}
            )

    def test_all_null_without_hint_stays_object(self):
        f = Frame.from_rows([{"x": None}], columns=["x"])
        assert f["x"].dtype == object

    def test_empty_frame_concats_with_typed_frame(self):
        empty = Frame.from_rows(
            [], columns=["id", "name"], dtypes={"id": np.int64, "name": object}
        )
        full = Frame({"id": np.array([1, 2]), "name": ["a", "b"]})
        both = concat([empty, full])
        assert both.num_rows == 2
        assert both["id"].dtype == np.int64
        assert both["name"].dtype == object

    def test_zero_length_part_does_not_poison_dtype(self):
        # an untyped empty frame (float64 columns) must not drag an
        # int64 column to float, nor an object column to something else
        empty = Frame.from_rows([], columns=["id"])
        full = Frame({"id": np.array([1, 2], dtype=np.int64)})
        assert concat([empty, full])["id"].dtype == np.int64
        assert concat([full, empty])["id"].dtype == np.int64


class TestDistinct:
    def test_distinct_keeps_first_occurrence(self):
        f = Frame({"k": [1, 2, 1, 3, 2], "v": [10, 20, 30, 40, 50]})
        out = f.distinct(["k"])
        assert list(out["k"]) == [1, 2, 3]
        assert list(out["v"]) == [10, 20, 40]

    def test_distinct_all_columns_default(self):
        f = Frame({"k": [1, 1, 1], "v": [2, 2, 3]})
        assert f.distinct().num_rows == 2

    def test_distinct_multi_key(self):
        f = Frame({"a": ["x", "x", "y"], "b": [1, 1, 1]})
        assert f.distinct(["a", "b"]).num_rows == 2
