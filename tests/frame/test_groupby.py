"""Unit tests for group-by aggregation."""

import numpy as np
import pytest

from repro.frame import Frame


@pytest.fixture
def events():
    return Frame(
        {
            "errcode": ["A", "B", "A", "A", "C", "B"],
            "midplane": [1, 1, 2, 1, 3, 2],
            "t": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        }
    )


class TestGroupSizes:
    def test_size(self, events):
        s = events.groupby("errcode").size()
        assert dict(zip(s["errcode"], s["count"])) == {"A": 3, "B": 2, "C": 1}

    def test_num_groups(self, events):
        assert events.groupby("errcode").num_groups == 3

    def test_multi_key(self, events):
        s = events.groupby(["errcode", "midplane"]).size()
        assert s.num_rows == 5  # (A,1)x2 (A,2) (B,1) (B,2) (C,3)

    def test_codes_per_row(self, events):
        gb = events.groupby("errcode")
        assert len(gb.codes) == 6
        assert gb.codes[0] == gb.codes[2] == gb.codes[3]


class TestAggregations:
    def test_count(self, events):
        out = events.groupby("errcode").agg(n="count")
        assert list(out["n"]) == [3, 2, 1]

    def test_sum_mean(self, events):
        out = events.groupby("errcode").agg(s=("t", "sum"), m=("t", "mean"))
        a = out.filter(out.mask_eq("errcode", "A"))
        assert a["s"][0] == 80.0
        assert a["m"][0] == pytest.approx(80.0 / 3)

    def test_min_max(self, events):
        out = events.groupby("errcode").agg(lo=("t", "min"), hi=("t", "max"))
        a = out.row(0)
        assert (a["lo"], a["hi"]) == (10.0, 40.0)

    def test_first_last_in_row_order(self, events):
        out = events.groupby("errcode").agg(f=("t", "first"), l=("t", "last"))
        a = out.row(0)
        assert (a["f"], a["l"]) == (10.0, 40.0)

    def test_nunique(self, events):
        out = events.groupby("errcode").agg(nmid=("midplane", "nunique"))
        assert dict(zip(out["errcode"], out["nmid"])) == {"A": 2, "B": 2, "C": 1}

    def test_median(self, events):
        out = events.groupby("errcode").agg(med=("t", "median"))
        assert out.row(0)["med"] == 30.0

    def test_unknown_agg_rejected(self, events):
        with pytest.raises(ValueError, match="unknown aggregation"):
            events.groupby("errcode").agg(x=("t", "mode"))

    def test_count_needs_no_source(self, events):
        out = events.groupby("errcode").agg(n="count")
        assert out["n"].sum() == 6

    def test_sum_needs_source(self, events):
        with pytest.raises(ValueError, match="source"):
            events.groupby("errcode")._agg_one(None, "sum")


class TestGroupsIteration:
    def test_groups_cover_all_rows(self, events):
        total = sum(sub.num_rows for _, sub in events.groupby("errcode").groups())
        assert total == 6

    def test_group_key_dict(self, events):
        keys = [k for k, _ in events.groupby(["errcode", "midplane"]).groups()]
        assert {"errcode": "A", "midplane": 1} in keys

    def test_subframe_rows_in_original_order(self, events):
        for key, sub in events.groupby("errcode").groups():
            if key["errcode"] == "A":
                assert list(sub["t"]) == [10.0, 30.0, 40.0]

    def test_apply(self, events):
        out = events.groupby("errcode").apply(
            lambda sub: {"span": float(sub["t"].max() - sub["t"].min())}
        )
        assert dict(zip(out["errcode"], out["span"])) == {
            "A": 30.0,
            "B": 40.0,
            "C": 0.0,
        }

    def test_empty_frame_groupby(self):
        f = Frame({"k": np.array([], dtype=np.int64), "v": np.array([], dtype=np.float64)})
        gb = f.groupby("k")
        assert gb.num_groups == 0
        assert gb.size().num_rows == 0


class TestSumDtypes:
    def test_int_sum_stays_int64(self):
        f = Frame({"k": ["a", "a", "b"], "v": np.array([1, 2, 3], dtype=np.int64)})
        out = f.groupby("k").agg(s=("v", "sum"))
        assert out["s"].dtype == np.int64
        assert list(out["s"]) == [3, 3]

    def test_int_sum_exact_beyond_float53(self):
        big = (1 << 53) + 1  # not representable as float64
        f = Frame({"k": ["a", "a"], "v": np.array([big, 0], dtype=np.int64)})
        out = f.groupby("k").agg(s=("v", "sum"))
        assert int(out["s"][0]) == big

    def test_bool_sum_counts(self):
        f = Frame({"k": ["a", "a", "b"], "v": np.array([True, True, False])})
        out = f.groupby("k").agg(s=("v", "sum"))
        assert out["s"].dtype == np.int64
        assert list(out["s"]) == [2, 0]

    def test_float_sum_stays_float(self):
        f = Frame({"k": ["a", "b"], "v": [1.5, 2.5]})
        out = f.groupby("k").agg(s=("v", "sum"))
        assert out["s"].dtype == np.float64
