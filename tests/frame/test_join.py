"""Unit tests for equi-joins."""

import numpy as np
import pytest

from repro.frame import Frame


@pytest.fixture
def jobs():
    return Frame(
        {
            "job_id": [1, 2, 3, 4],
            "location": ["R00-M0", "R00-M1", "R01-M0", "R00-M0"],
        }
    )


@pytest.fixture
def events():
    return Frame(
        {
            "location": ["R00-M0", "R00-M0", "R02-M0"],
            "errcode": ["KERN_PANIC", "DDR_ERR", "LINK_ERR"],
            "sev": [5, 4, 3],
        }
    )


class TestInnerJoin:
    def test_match_count(self, jobs, events):
        out = jobs.join(events, on="location")
        # jobs 1 and 4 each match 2 events at R00-M0
        assert out.num_rows == 4

    def test_row_pairing(self, jobs, events):
        out = jobs.join(events, on="location")
        r00 = out.filter(out.mask_eq("job_id", 1))
        assert set(r00["errcode"]) == {"KERN_PANIC", "DDR_ERR"}

    def test_no_matches(self, jobs):
        other = Frame({"location": ["R99-M9"], "x": [1]})
        assert jobs.join(other, on="location").num_rows == 0

    def test_left_order_preserved(self, jobs, events):
        out = jobs.join(events, on="location")
        assert list(out["job_id"]) == sorted(out["job_id"])

    def test_missing_key_raises(self, jobs, events):
        with pytest.raises(KeyError):
            jobs.join(events, on="nope")

    def test_multi_key(self):
        l = Frame({"a": [1, 1, 2], "b": ["x", "y", "x"], "v": [10, 20, 30]})
        r = Frame({"a": [1, 2], "b": ["x", "x"], "w": [100, 200]})
        out = l.join(r, on=["a", "b"])
        assert list(out["v"]) == [10, 30]
        assert list(out["w"]) == [100, 200]

    def test_colliding_column_suffixed(self):
        l = Frame({"k": [1], "v": [1]})
        r = Frame({"k": [1], "v": [2]})
        out = l.join(r, on="k")
        assert set(out.columns) == {"k", "v", "v_right"}

    def test_mismatched_key_kinds_rejected(self):
        l = Frame({"k": [1]})
        r = Frame({"k": ["1"], "v": [2]})
        with pytest.raises(TypeError):
            l.join(r, on="k")


class TestLeftJoin:
    def test_unmatched_rows_kept(self, jobs, events):
        out = jobs.join(events, on="location", how="left")
        assert set(out["job_id"]) == {1, 2, 3, 4}
        assert out.num_rows == 6  # 2+1+1+2

    def test_numeric_fill_nan(self, jobs, events):
        out = jobs.join(events, on="location", how="left")
        unmatched = out.filter(out.mask_eq("job_id", 2))
        assert np.isnan(unmatched["sev"][0])

    def test_string_fill_empty(self, jobs, events):
        out = jobs.join(events, on="location", how="left")
        unmatched = out.filter(out.mask_eq("job_id", 3))
        assert unmatched["errcode"][0] == ""

    def test_fully_matched_left_equals_inner(self, events):
        l = Frame({"location": ["R00-M0"], "j": [9]})
        inner = l.join(events, on="location")
        left = l.join(events, on="location", how="left")
        assert inner.num_rows == left.num_rows == 2

    def test_bad_how_rejected(self, jobs, events):
        with pytest.raises(ValueError, match="unsupported"):
            jobs.join(events, on="location", how="outer")

    def test_empty_right(self, jobs):
        empty = Frame({"location": np.array([], dtype=object), "x": np.array([], dtype=np.int64)})
        out = jobs.join(empty, on="location", how="left")
        assert out.num_rows == 4
        assert np.isnan(out["x"]).all()


class TestLeftJoinTypedFills:
    """Unmatched right-side columns take typed fills: bool stays bool
    (False), int upcasts to float NaN, float gets NaN, str gets ""."""

    @pytest.fixture
    def right(self):
        return Frame(
            {
                "location": ["R00-M0", "R00-M1"],
                "flag": np.array([True, True]),
                "count": np.array([7, 8], dtype=np.int64),
                "score": np.array([0.5, 1.5]),
                "label": ["x", "y"],
            }
        )

    @pytest.fixture
    def out(self, jobs, right):
        return jobs.join(right, on="location", how="left")

    def test_bool_fill_keeps_dtype(self, out):
        assert out["flag"].dtype == np.dtype(bool)
        unmatched = out.filter(out.mask_eq("job_id", 3))
        assert unmatched["flag"][0] == False  # noqa: E712 — dtype matters
        matched = out.filter(out.mask_eq("job_id", 1))
        assert matched["flag"][0] == True  # noqa: E712

    def test_int_fill_upcasts_to_float_nan(self, out):
        assert out["count"].dtype == np.float64
        assert np.isnan(out.filter(out.mask_eq("job_id", 3))["count"][0])
        assert out.filter(out.mask_eq("job_id", 2))["count"][0] == 8.0

    def test_float_fill_nan(self, out):
        assert np.isnan(out.filter(out.mask_eq("job_id", 3))["score"][0])

    def test_str_fill_empty(self, out):
        assert out.filter(out.mask_eq("job_id", 3))["label"][0] == ""

    def test_indicator_marks_fill_rows(self, jobs, right):
        out = jobs.join(
            right, on="location", how="left", indicator="_unmatched"
        )
        assert out["_unmatched"].dtype == np.dtype(bool)
        # job 3 (R01-M0) is the only unmatched left row
        assert list(out["job_id"][out["_unmatched"]]) == [3]
        # a False bool fill is distinguishable from a genuine False
        genuine = out.filter(~out["_unmatched"])
        assert genuine["flag"].all()

    def test_indicator_all_false_on_inner(self, jobs, right):
        out = jobs.join(right, on="location", indicator="_unmatched")
        assert not out["_unmatched"].any()

    def test_indicator_collision_rejected(self, jobs, right):
        with pytest.raises(ValueError, match="collides"):
            jobs.join(right, on="location", how="left", indicator="flag")

    def test_bool_fill_on_empty_right(self, jobs):
        empty = Frame(
            {
                "location": np.array([], dtype=object),
                "ok": np.array([], dtype=bool),
            }
        )
        out = jobs.join(empty, on="location", how="left", indicator="_null")
        assert out["ok"].dtype == np.dtype(bool)
        assert not out["ok"].any()
        assert out["_null"].all()
