"""Unit tests for equi-joins."""

import numpy as np
import pytest

from repro.frame import Frame


@pytest.fixture
def jobs():
    return Frame(
        {
            "job_id": [1, 2, 3, 4],
            "location": ["R00-M0", "R00-M1", "R01-M0", "R00-M0"],
        }
    )


@pytest.fixture
def events():
    return Frame(
        {
            "location": ["R00-M0", "R00-M0", "R02-M0"],
            "errcode": ["KERN_PANIC", "DDR_ERR", "LINK_ERR"],
            "sev": [5, 4, 3],
        }
    )


class TestInnerJoin:
    def test_match_count(self, jobs, events):
        out = jobs.join(events, on="location")
        # jobs 1 and 4 each match 2 events at R00-M0
        assert out.num_rows == 4

    def test_row_pairing(self, jobs, events):
        out = jobs.join(events, on="location")
        r00 = out.filter(out.mask_eq("job_id", 1))
        assert set(r00["errcode"]) == {"KERN_PANIC", "DDR_ERR"}

    def test_no_matches(self, jobs):
        other = Frame({"location": ["R99-M9"], "x": [1]})
        assert jobs.join(other, on="location").num_rows == 0

    def test_left_order_preserved(self, jobs, events):
        out = jobs.join(events, on="location")
        assert list(out["job_id"]) == sorted(out["job_id"])

    def test_missing_key_raises(self, jobs, events):
        with pytest.raises(KeyError):
            jobs.join(events, on="nope")

    def test_multi_key(self):
        l = Frame({"a": [1, 1, 2], "b": ["x", "y", "x"], "v": [10, 20, 30]})
        r = Frame({"a": [1, 2], "b": ["x", "x"], "w": [100, 200]})
        out = l.join(r, on=["a", "b"])
        assert list(out["v"]) == [10, 30]
        assert list(out["w"]) == [100, 200]

    def test_colliding_column_suffixed(self):
        l = Frame({"k": [1], "v": [1]})
        r = Frame({"k": [1], "v": [2]})
        out = l.join(r, on="k")
        assert set(out.columns) == {"k", "v", "v_right"}

    def test_mismatched_key_kinds_rejected(self):
        l = Frame({"k": [1]})
        r = Frame({"k": ["1"], "v": [2]})
        with pytest.raises(TypeError):
            l.join(r, on="k")


class TestLeftJoin:
    def test_unmatched_rows_kept(self, jobs, events):
        out = jobs.join(events, on="location", how="left")
        assert set(out["job_id"]) == {1, 2, 3, 4}
        assert out.num_rows == 6  # 2+1+1+2

    def test_numeric_fill_nan(self, jobs, events):
        out = jobs.join(events, on="location", how="left")
        unmatched = out.filter(out.mask_eq("job_id", 2))
        assert np.isnan(unmatched["sev"][0])

    def test_string_fill_empty(self, jobs, events):
        out = jobs.join(events, on="location", how="left")
        unmatched = out.filter(out.mask_eq("job_id", 3))
        assert unmatched["errcode"][0] == ""

    def test_fully_matched_left_equals_inner(self, events):
        l = Frame({"location": ["R00-M0"], "j": [9]})
        inner = l.join(events, on="location")
        left = l.join(events, on="location", how="left")
        assert inner.num_rows == left.num_rows == 2

    def test_bad_how_rejected(self, jobs, events):
        with pytest.raises(ValueError, match="unsupported"):
            jobs.join(events, on="location", how="outer")

    def test_empty_right(self, jobs):
        empty = Frame({"location": np.array([], dtype=object), "x": np.array([], dtype=np.int64)})
        out = jobs.join(empty, on="location", how="left")
        assert out.num_rows == 4
        assert np.isnan(out["x"]).all()
