"""Unit tests for the per-midplane hazard tracker."""

import pytest

from repro.predict import MidplaneHazard


class TestObserveAndRisk:
    def test_no_events_zero_risk(self):
        h = MidplaneHazard()
        assert h.risk(1000.0, 5) == 0.0

    def test_risk_decays_with_quiet_time(self):
        h = MidplaneHazard(shape=0.5)
        h.observe(0.0, 3)
        assert h.risk(100.0, 3) > h.risk(10000.0, 3) > h.risk(1e6, 3) > 0.0

    def test_risk_localized(self):
        h = MidplaneHazard()
        h.observe(0.0, 3)
        assert h.risk(100.0, 4) == 0.0

    def test_repeat_events_accumulate(self):
        a, b = MidplaneHazard(), MidplaneHazard()
        a.observe(0.0, 3)
        b.observe(0.0, 3)
        b.observe(50.0, 3)
        assert b.risk(100.0, 3) > a.risk(100.0, 3)

    def test_memory_caps_contributions(self):
        h = MidplaneHazard(memory=2)
        for t in range(5):
            h.observe(float(t), 0)
        assert len(h._events[0]) == 2
        assert h.last_event(0) == 4.0

    def test_floor_prevents_blowup(self):
        h = MidplaneHazard(shape=0.3, floor=60.0)
        h.observe(100.0, 0)
        # evaluated at the event instant: finite thanks to the floor
        assert h.risk(100.0, 0) == pytest.approx((60.0 / h.tau) ** (0.3 - 1))

    def test_partition_risk_sums(self):
        h = MidplaneHazard()
        h.observe(0.0, 2)
        h.observe(0.0, 3)
        assert h.partition_risk(100.0, [2, 3]) == pytest.approx(
            h.risk(100.0, 2) + h.risk(100.0, 3)
        )

    def test_reset(self):
        h = MidplaneHazard()
        h.observe(0.0, 2)
        h.reset()
        assert h.risk(10.0, 2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MidplaneHazard(shape=-1.0)
        with pytest.raises(ValueError):
            MidplaneHazard(tau=0.0)
        h = MidplaneHazard()
        with pytest.raises(ValueError):
            h.observe(0.0, 80)

    def test_constant_hazard_when_shape_one(self):
        h = MidplaneHazard(shape=1.0)
        h.observe(0.0, 0)
        assert h.risk(100.0, 0) == pytest.approx(h.risk(1e6, 0))
