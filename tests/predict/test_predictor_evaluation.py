"""Unit and replay tests for the job-risk predictor."""

import pytest

from repro.frame import Frame
from repro.machine.partition import Partition
from repro.predict import (
    JobRiskPredictor,
    MidplaneHazard,
    RiskWeights,
    evaluate_predictor,
    sweep_thresholds,
)
from tests.core.helpers import jobs


def interruptions(rows):
    """(job_id, t, mp, category) rows."""
    return Frame.from_rows(
        [
            {"job_id": j, "event_time": float(t), "mp": mp, "category": c}
            for j, t, mp, c in rows
        ],
        columns=["job_id", "event_time", "mp", "category"],
    )


class TestScoring:
    def test_location_term(self):
        p = JobRiskPredictor(hazard=MidplaneHazard(),
                             weights=RiskWeights(use_size=False))
        p.observe_event(0.0, 16)
        hot = p.score(600.0, "R10-M0", 1)     # midplane 16
        cold = p.score(600.0, "R20-M0", 1)    # midplane 32
        assert hot > cold == 0.0

    def test_size_term(self):
        p = JobRiskPredictor(hazard=MidplaneHazard(),
                             weights=RiskWeights(use_location=False))
        assert p.score(0.0, Partition(0, 80), 80) > p.score(0.0, Partition(0, 1), 1)

    def test_ablation_switches(self):
        w = RiskWeights().ablated(location=False)
        assert not w.use_location and w.use_size

    def test_alarm_threshold(self):
        p = JobRiskPredictor(hazard=MidplaneHazard(), threshold=1.0,
                             weights=RiskWeights(use_location=False,
                                                 size_weight=0.02))
        assert not p.alarm(0.0, Partition(0, 1), 1)
        assert p.alarm(0.0, Partition(0, 80), 80)


class TestReplay:
    def test_perfect_sticky_scenario(self):
        """A kill chain at one midplane: the predictor alarms the later
        placements after seeing the first kill."""
        job_rows = [
            (1, "/a", 0.0, 1000.0, "R00-M0", 1),      # first kill (unseen)
            (2, "/b", 1200.0, 1500.0, "R00-M0", 1),   # alarmed, killed
            (3, "/c", 1700.0, 2000.0, "R00-M0", 1),   # alarmed, killed
            (4, "/d", 1200.0, 9000.0, "R30-M0", 1),   # cold, survives
        ]
        ints = interruptions([(1, 1000.0, 0, 1), (2, 1500.0, 0, 1),
                              (3, 2000.0, 0, 1)])
        p = JobRiskPredictor(
            hazard=MidplaneHazard(shape=0.5),
            weights=RiskWeights(use_size=False),
            threshold=0.5,
        )
        score = evaluate_predictor(p, jobs(job_rows), ints)
        assert score.true_positives == 2   # jobs 2 and 3
        assert score.false_negatives == 1  # job 1, no prior signal
        assert score.false_positives == 0
        assert score.true_negatives == 1
        assert score.recall == pytest.approx(2 / 3)
        assert score.precision == 1.0
        assert score.work_coverage > 0.0

    def test_no_lookahead(self):
        """An event at a job's own end must not inform its own score."""
        job_rows = [(1, "/a", 0.0, 1000.0, "R00-M0", 1)]
        ints = interruptions([(1, 1000.0, 0, 1)])
        p = JobRiskPredictor(hazard=MidplaneHazard(),
                             weights=RiskWeights(use_size=False),
                             threshold=1e-9)
        score = evaluate_predictor(p, jobs(job_rows), ints)
        assert score.true_positives == 0
        assert score.false_negatives == 1

    def test_category_filter(self):
        job_rows = [(1, "/a", 0.0, 1000.0, "R00-M0", 1)]
        ints = interruptions([(1, 1000.0, 0, 2)])  # application error
        p = JobRiskPredictor(hazard=MidplaneHazard(), threshold=1e9)
        score = evaluate_predictor(p, jobs(job_rows), ints, category=1)
        assert score.false_negatives == 0  # cat-2 not a positive here
        assert score.true_negatives == 1

    def test_metrics_edge_cases(self):
        from repro.predict.evaluation import PredictionScore

        empty = PredictionScore(0, 0, 0, 0, 0.0, 0.0)
        assert empty.precision == empty.recall == empty.f1 == 0.0
        assert empty.alarm_rate == 0.0
        assert empty.work_coverage == 0.0

    def test_threshold_sweep_monotone_alarms(self):
        job_rows = [
            (i, f"/x{i}", i * 100.0, i * 100.0 + 50.0, "R00-M0", 1)
            for i in range(1, 30)
        ]
        ints = interruptions([(5, 550.0, 0, 1)])
        results = sweep_thresholds(
            lambda: JobRiskPredictor(hazard=MidplaneHazard(),
                                     weights=RiskWeights(use_size=False)),
            jobs(job_rows),
            ints,
            thresholds=[1e-6, 0.5, 1e9],
        )
        alarm_rates = [s.alarm_rate for _, s in results]
        assert alarm_rates[0] >= alarm_rates[1] >= alarm_rates[2]
        assert alarm_rates[2] == 0.0
