"""Projection pushdown into the parse cache (satellite of DESIGN §14):
a cache hit under a pushed column subset decodes only the requested npz
members, and the lookup metrics stay exactly as without pushdown."""

import numpy as np
import pytest

from repro.logs import write_ras_log
from repro.logs.quarantine import IngestPolicy
from repro.logs.ras import RAS_COLUMNS
from repro.logs.textio import read_log_frame
from repro.obs.metrics import get_metrics
from repro.parallel import ParseCache
from repro.query import col, scan_ras_log
from repro.stream.equivalence import frames_equal

from tests.query.conftest import make_ras_log

#: RAS schema positions the pipeline plan needs — the npz member names
#: are ``<j>.raw`` / ``<j>.values`` + ``<j>.codes`` by column position
POS = {name: j for j, name in enumerate(RAS_COLUMNS)}


def lookups(status):
    return get_metrics().value("ingest.cache.lookups", status=status) or 0


@pytest.fixture()
def warmed(tmp_path):
    """A written RAS log plus a cache already holding its full parse."""
    log = make_ras_log(250)
    path = tmp_path / "ras.log"
    write_ras_log(log, path)
    cache = ParseCache(tmp_path / "cache")
    frame, _report, status = read_log_frame(path, "ras", cache=cache)
    assert status == "miss"
    return path, cache, frame


class TestCacheColumnSubset:
    def test_hit_decodes_only_requested_members(self, warmed, np_load_spy):
        path, cache, full = warmed
        _paths, members = np_load_spy
        want = ["event_time", "errcode", "severity"]
        frame, _report, status = read_log_frame(
            path, "ras", cache=cache, columns=want
        )
        assert status == "hit"
        assert frames_equal(frame, full.select(want))
        # only the three requested columns' members were touched; the
        # fat dict-encoded message/serialnumber were never unpickled
        touched_positions = {m.split(".", 1)[0] for m in members}
        assert touched_positions == {str(POS[c]) for c in want}
        assert f"{POS['message']}.values" not in members

    def test_subset_roundtrips_in_requested_order(self, warmed):
        path, cache, full = warmed
        frame, _report, status = read_log_frame(
            path, "ras", cache=cache, columns=["location", "recid"]
        )
        assert status == "hit"
        assert frame.columns == ["location", "recid"]
        assert frames_equal(frame, full.select(["location", "recid"]))

    def test_lookup_metrics_unchanged_by_pushdown(self, warmed):
        path, cache, _full = warmed
        h0, m0 = lookups("hit"), lookups("miss")
        read_log_frame(path, "ras", cache=cache, columns=["event_time"])
        assert lookups("hit") == h0 + 1  # exactly one lookup, one hit
        assert lookups("miss") == m0
        read_log_frame(path, "ras", cache=cache)
        assert lookups("hit") == h0 + 2

    def test_unknown_column_is_stale(self, warmed):
        path, cache, _full = warmed
        policy = IngestPolicy()
        key = cache.key_for(path, kind="ras", policy=policy)
        s0 = lookups("stale")
        assert cache.load(key, columns=["no_such_column"]) is None
        assert cache.last_status == "stale"
        assert lookups("stale") == s0 + 1


class TestScanLogPlanPushdown:
    def test_plan_prunes_scan_and_hits_cache_subset(
        self, warmed, np_load_spy
    ):
        path, cache, full = warmed
        _paths, members = np_load_spy
        info: dict = {}
        lf = (
            scan_ras_log(path, cache=cache, info=info)
            .filter(col("severity") == "FATAL")
            .select(["event_time", "errcode"])
        )
        leaf = lf.optimized_plan()
        while leaf.children():
            leaf = leaf.children()[0]
        assert leaf.columns == ("errcode", "severity", "event_time")
        got = lf.collect()
        assert info["cache_status"] == "hit"
        want = full.filter(full["severity"] == "FATAL").select(
            ["event_time", "errcode"]
        )
        assert frames_equal(got, want)
        touched_positions = {m.split(".", 1)[0] for m in members}
        assert touched_positions == {
            str(POS[c]) for c in ("errcode", "severity", "event_time")
        }

    def test_miss_parses_full_and_still_matches(self, tmp_path):
        log = make_ras_log(120, seed=9)
        path = tmp_path / "ras.log"
        write_ras_log(log, path)
        cache = ParseCache(tmp_path / "cache")
        lf = (
            scan_ras_log(path, cache=cache)
            .filter(col("severity") == "FATAL")
            .select(["event_time", "errcode"])
        )
        got = lf.collect()
        # oracle: an independent eager parse of the same file (the
        # in-memory log is not bit-identical after the text roundtrip)
        parsed, _r, _s = read_log_frame(path, "ras")
        want = parsed.filter(parsed["severity"] == "FATAL").select(
            ["event_time", "errcode"]
        )
        assert frames_equal(got, want)
        # the miss stored the FULL parse: later callers may request any
        # column and still hit
        frame, _r, status = read_log_frame(
            path, "ras", cache=cache, columns=["message"]
        )
        assert status == "hit"
        assert frames_equal(frame, parsed.select(["message"]))

    def test_cacheless_scan_works(self, tmp_path):
        log = make_ras_log(80, seed=11)
        path = tmp_path / "ras.log"
        write_ras_log(log, path)
        got = scan_ras_log(path).select(["recid", "severity"]).collect()
        parsed, _r, _s = read_log_frame(path, "ras")
        assert frames_equal(got, parsed.select(["recid", "severity"]))
