"""The deferred expression DSL: evaluation semantics (NaN included)
and the predicate analysis that feeds pushdown."""

import numpy as np
import pytest

from repro.frame import Frame
from repro.query import col, lit
from repro.query.expr import (
    BoolOp,
    Cmp,
    and_all,
    conjuncts,
    pushable_time_range,
)


@pytest.fixture()
def frame():
    return Frame(
        {
            "t": np.array([1.0, 2.5, np.nan, 4.0, np.inf], dtype=np.float64),
            "n": np.array([10, 20, 30, 40, 50], dtype=np.int64),
            "sev": np.array(
                ["FATAL", "INFO", "FATAL", "WARN", "ERROR"], dtype=object
            ),
        }
    )


class TestEvaluate:
    def test_cmp_matches_numpy(self, frame):
        got = (col("n") > 25).evaluate(frame)
        np.testing.assert_array_equal(got, frame["n"] > 25)
        assert got.dtype == bool

    def test_string_equality(self, frame):
        got = (col("sev") == "FATAL").evaluate(frame)
        np.testing.assert_array_equal(got, frame["sev"] == "FATAL")

    def test_nan_compares_false_like_numpy(self, frame):
        # NaN rows are False under every operator except != — exactly
        # the eager numpy semantics the lazy engine must reproduce
        for expr, eager in [
            (col("t") > 0.0, frame["t"] > 0.0),
            (col("t") <= 100.0, frame["t"] <= 100.0),
            (col("t") == np.nan, frame["t"] == np.nan),
            (col("t") != np.nan, frame["t"] != np.nan),
        ]:
            np.testing.assert_array_equal(expr.evaluate(frame), eager)
        assert not (col("t") > 0.0).evaluate(frame)[2]
        assert (col("t") != 0.0).evaluate(frame)[2]

    def test_boolop_and_or_not(self, frame):
        pred = (col("n") >= 20) & (col("sev") == "FATAL")
        np.testing.assert_array_equal(
            pred.evaluate(frame),
            (frame["n"] >= 20) & (frame["sev"] == "FATAL"),
        )
        pred = (col("n") < 15) | (col("sev") == "WARN")
        np.testing.assert_array_equal(
            pred.evaluate(frame),
            (frame["n"] < 15) | (frame["sev"] == "WARN"),
        )
        np.testing.assert_array_equal(
            (~(col("sev") == "INFO")).evaluate(frame),
            frame["sev"] != "INFO",
        )

    def test_isin_string_uses_set_path(self, frame):
        got = col("sev").isin(["FATAL", "ERROR"]).evaluate(frame)
        np.testing.assert_array_equal(
            got, frame.mask_isin("sev", ["FATAL", "ERROR"])
        )

    def test_isin_numeric_and_empty(self, frame):
        np.testing.assert_array_equal(
            col("n").isin([10, 40]).evaluate(frame),
            np.isin(frame["n"], [10, 40]),
        )
        assert not col("n").isin([]).evaluate(frame).any()

    def test_arith(self, frame):
        got = ((col("n") * 2 + 1) / lit(4.0)).evaluate(frame)
        np.testing.assert_array_equal(got, (frame["n"] * 2 + 1) / 4.0)
        np.testing.assert_array_equal(
            (col("t") - col("n")).evaluate(frame), frame["t"] - frame["n"]
        )

    def test_required_columns(self):
        pred = ((col("a") > 1) & (col("b") == "x")) | (~col("c").isin([2]))
        assert pred.required_columns() == frozenset({"a", "b", "c"})
        assert lit(5).required_columns() == frozenset()

    def test_same_as_is_structural(self):
        assert (col("a") > 1).same_as(col("a") > 1)
        assert not (col("a") > 1).same_as(col("a") >= 1)

    def test_bad_ops_rejected(self):
        with pytest.raises(ValueError):
            Cmp("~=", col("a"), lit(1))
        with pytest.raises(ValueError):
            BoolOp("xor", (col("a") > 1, col("b") > 2))
        with pytest.raises(ValueError):
            BoolOp("and", (col("a") > 1,))


class TestConjuncts:
    def test_flattens_nested_and(self):
        a, b, c = col("x") > 1, col("y") > 2, col("z") > 3
        parts = list(conjuncts((a & b) & c))
        assert len(parts) == 3
        assert [p.describe() for p in parts] == [
            p.describe() for p in (a, b, c)
        ]

    def test_or_is_opaque(self):
        parts = list(conjuncts((col("x") > 1) | (col("y") > 2)))
        assert len(parts) == 1

    def test_and_all_roundtrip(self):
        assert and_all([]) is None
        only = col("x") > 1
        assert and_all([only]) is only
        both = and_all([col("x") > 1, col("y") > 2])
        assert isinstance(both, BoolOp) and both.op == "and"


class TestPushableTimeRange:
    def test_two_sided_range_pushes(self):
        pred = (
            (col("t") >= 10.0) & (col("t") < 20.0) & (col("sev") == "FATAL")
        )
        rng, residual = pushable_time_range(pred, "t")
        assert rng == (10.0, 20.0)
        assert residual is not None
        assert residual.same_as(col("sev") == "FATAL")

    def test_fully_pushed_leaves_no_residual(self):
        rng, residual = pushable_time_range(
            (col("t") >= 1.0) & (col("t") < 2.0), "t"
        )
        assert rng == (1.0, 2.0)
        assert residual is None

    def test_one_sided_refuses(self):
        # the store mask applies both edges; pushing one side would
        # synthesize a t < inf edge that drops +inf timestamps
        for pred in ((col("t") >= 10.0), (col("t") < 20.0)):
            rng, residual = pushable_time_range(pred, "t")
            assert rng is None
            assert residual is pred

    def test_strict_bounds_nudged_one_ulp(self):
        rng, residual = pushable_time_range(
            (col("t") > 10.0) & (col("t") <= 20.0), "t"
        )
        assert residual is None
        lo, hi = rng
        assert lo == np.nextafter(10.0, np.inf)
        assert hi == np.nextafter(20.0, np.inf)

    def test_literal_on_left_flips(self):
        rng, residual = pushable_time_range(
            (lit(10.0) <= col("t")) & (lit(20.0) > col("t")), "t"
        )
        assert rng == (10.0, 20.0)
        assert residual is None

    def test_tightest_bounds_win(self):
        rng, _ = pushable_time_range(
            (col("t") >= 1.0) & (col("t") >= 5.0)
            & (col("t") < 30.0) & (col("t") < 20.0),
            "t",
        )
        assert rng == (5.0, 20.0)

    def test_other_columns_stay_residual(self):
        pred = (col("u") >= 1.0) & (col("u") < 2.0)
        rng, residual = pushable_time_range(pred, "t")
        assert rng is None and residual is pred

    def test_nan_bound_never_pushes(self):
        pred = (col("t") > np.nan) & (col("t") < 5.0)
        rng, residual = pushable_time_range(pred, "t")
        assert rng is None and residual is pred

    def test_equality_and_or_are_not_bounds(self):
        pred = (col("t") == 5.0) & (col("t") < 9.0)
        rng, residual = pushable_time_range(pred, "t")
        assert rng is None and residual is pred
        disj = (col("t") >= 1.0) | (col("t") < 2.0)
        rng, residual = pushable_time_range(disj, "t")
        assert rng is None and residual is disj
