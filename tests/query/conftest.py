"""Shared builders for the query-engine tests: small, schema-valid
RAS/job logs (no simulation — these tests exercise plumbing, not
physics)."""

import numpy as np
import pytest

from repro.frame import Frame
from repro.logs.job import JOB_COLUMNS, JobLog
from repro.logs.ras import RAS_COLUMNS, RasLog


def make_ras_log(n: int = 300, seed: int = 3) -> RasLog:
    rng = np.random.default_rng(seed)
    sev = np.array(["INFO", "WARN", "ERROR", "FATAL"], dtype=object)
    comp = np.array(["KERNEL", "MMCS", "CARD", "MC"], dtype=object)
    data = {
        "recid": np.arange(1, n + 1, dtype=np.int64),
        "msg_id": np.array(
            [f"KERN_{i % 17:04d}" for i in range(n)], dtype=object
        ),
        "component": comp[rng.integers(0, len(comp), n)],
        "subcomponent": np.array(
            [f"sub{i % 5}" for i in range(n)], dtype=object
        ),
        "errcode": np.array(
            [f"_bgp_err_{i % 7}" for i in range(n)], dtype=object
        ),
        "severity": sev[rng.integers(0, len(sev), n)],
        "event_time": np.cumsum(rng.random(n) * 5.0) + 1.2e9,
        "location": np.array(
            [f"R{i % 4:02d}-M{i % 2}" for i in range(n)], dtype=object
        ),
        "serialnumber": np.array(
            [f"SN{i:08d}" for i in range(n)], dtype=object
        ),
        "message": np.array(
            [f"machine check interrupt {i} " + "x" * 60 for i in range(n)],
            dtype=object,
        ),
    }
    return RasLog(Frame({c: data[c] for c in RAS_COLUMNS}))


def make_job_log(n: int = 60, seed: int = 3) -> JobLog:
    rng = np.random.default_rng(seed)
    start = np.sort(1.2e9 + rng.random(n) * 1500.0)
    data = {
        "job_id": np.arange(1, n + 1, dtype=np.int64),
        "job_name": np.array([f"job{i % 9}" for i in range(n)], dtype=object),
        "executable": np.array(
            [f"/bin/app{i % 4}" for i in range(n)], dtype=object
        ),
        "queued_time": start - rng.random(n) * 60.0,
        "start_time": start,
        "end_time": start + 120.0 + rng.random(n) * 600.0,
        "location": np.array(
            [f"R{i % 4:02d}-M{i % 2}" for i in range(n)], dtype=object
        ),
        "user": np.array([f"user{i % 5}" for i in range(n)], dtype=object),
        "project": np.array([f"proj{i % 3}" for i in range(n)], dtype=object),
        "size_midplanes": (1 + (np.arange(n) % 4)).astype(np.int64),
    }
    return JobLog(Frame({c: data[c] for c in JOB_COLUMNS}))


@pytest.fixture()
def ras_log():
    return make_ras_log()


@pytest.fixture()
def np_load_spy(monkeypatch):
    """Record every ``np.load`` path and, for npz entries, every member
    actually read — pushdown tests *prove* untouched columns were never
    opened/decoded instead of trusting the code path."""
    paths: list[str] = []
    members: list[str] = []
    real_load = np.load

    class _NpzSpy:
        def __init__(self, inner):
            self._inner = inner

        def __enter__(self):
            self._inner.__enter__()
            return self

        def __exit__(self, *exc):
            return self._inner.__exit__(*exc)

        def __getitem__(self, key):
            members.append(key)
            return self._inner[key]

    def spy(path, *args, **kwargs):
        paths.append(str(path))
        out = real_load(path, *args, **kwargs)
        if str(path).endswith(".npz"):
            return _NpzSpy(out)
        return out

    monkeypatch.setattr(np, "load", spy)
    return paths, members
