"""Pushdown through ScanStore plans: time-range conjuncts prune whole
shards unopened, projections skip column files, and the optimized plan
stays bit-identical to both the unoptimized plan and the eager chain."""

import numpy as np
import pytest

from repro.obs.metrics import get_metrics
from repro.query import col, scan_store
from repro.query import plan as p
from repro.store import ShardedDataset
from repro.stream.equivalence import frames_equal

from tests.query.conftest import make_job_log, make_ras_log

MACHINE = "m0"
WINDOWS = 5


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    ds = ShardedDataset.create(tmp_path_factory.mktemp("qstore") / "store")
    ds.add_machine_trace(
        MACHINE, make_ras_log(400), make_job_log(80), windows=WINDOWS
    )
    return ds


def shard_counter(status):
    return (
        get_metrics().value(
            "store.scan.shards", table="ras", status=status
        )
        or 0
    )


def leaf_of(node):
    while node.children():
        node = node.children()[0]
    return node


def middle_window(store):
    shards = [s for s in store.manifest.select(MACHINE, "ras") if s.rows]
    s = shards[len(shards) // 2]
    return float(s.time_min), float(np.nextafter(s.time_max, np.inf))


class TestTimeRangePushdown:
    def test_range_lands_in_scan_and_prunes_shards(self, store):
        q0, q1 = middle_window(store)
        lf = scan_store(store, MACHINE, "ras").filter(
            (col("event_time") >= q0)
            & (col("event_time") < q1)
            & (col("severity") == "FATAL")
        )
        opt = lf.optimized_plan()
        leaf = leaf_of(opt)
        assert isinstance(leaf, p.ScanStore)
        assert leaf.time_range == (q0, q1)
        # the severity conjunct stays as the residual predicate; the
        # time conjuncts do NOT get re-applied above the scan
        assert "event_time" not in opt.describe()

        pruned0 = shard_counter("pruned")
        got = lf.collect()
        assert shard_counter("pruned") - pruned0 >= WINDOWS - 2

        full = store.scan(MACHINE, "ras")
        t = full["event_time"]
        want = full.filter(
            (t >= q0) & (t < q1) & (full["severity"] == "FATAL")
        )
        assert frames_equal(got, want)
        assert frames_equal(lf.collect(optimize_plan=False), want)

    def test_one_sided_range_is_not_pushed(self, store):
        q0, _q1 = middle_window(store)
        lf = scan_store(store, MACHINE, "ras").filter(
            col("event_time") >= q0
        )
        leaf = leaf_of(lf.optimized_plan())
        assert leaf.time_range is None
        full = store.scan(MACHINE, "ras")
        want = full.filter(full["event_time"] >= q0)
        assert frames_equal(lf.collect(), want)

    def test_pushed_range_intersects_existing(self, store):
        q0, q1 = middle_window(store)
        base = p.ScanStore(store, MACHINE, "ras", time_range=(q0, np.inf))
        from repro.query import LazyFrame

        lf = LazyFrame(base).filter(
            (col("event_time") >= 0.0) & (col("event_time") < q1)
        )
        leaf = leaf_of(lf.optimized_plan())
        assert leaf.time_range == (q0, q1)


class TestProjectionPushdown:
    def test_select_narrows_scan_columns(self, store, np_load_spy):
        paths, _members = np_load_spy
        lf = (
            scan_store(store, MACHINE, "ras")
            .filter(col("severity") == "FATAL")
            .select(["event_time", "errcode"])
        )
        leaf = leaf_of(lf.optimized_plan())
        assert leaf.columns == ("errcode", "severity", "event_time")
        got = lf.collect()
        assert not any(".message." in path for path in paths)
        full = store.scan(MACHINE, "ras")
        want = full.filter(full["severity"] == "FATAL").select(
            ["event_time", "errcode"]
        )
        assert frames_equal(got, want)

    def test_combined_range_and_projection(self, store):
        q0, q1 = middle_window(store)
        lf = (
            scan_store(store, MACHINE, "ras")
            .filter(
                (col("event_time") >= q0) & (col("event_time") < q1)
            )
            .select(["recid", "location"])
        )
        opt = lf.optimized_plan()
        leaf = leaf_of(opt)
        assert leaf.time_range == (q0, q1)
        assert leaf.columns == ("recid", "location")
        full = store.scan(MACHINE, "ras")
        t = full["event_time"]
        want = full.filter((t >= q0) & (t < q1)).select(
            ["recid", "location"]
        )
        assert frames_equal(lf.collect(), want)
        assert frames_equal(lf.collect(optimize_plan=False), want)

    def test_groupby_over_store_scan(self, store):
        lf = (
            scan_store(store, MACHINE, "ras")
            .groupby("severity")
            .agg(n="count")
        )
        full = store.scan(MACHINE, "ras")
        assert frames_equal(
            lf.collect(), full.groupby("severity").agg(n="count")
        )
