"""LazyFrame API semantics, explain() output and optimizer shapes."""

import numpy as np
import pytest

from repro.frame import Frame
from repro.query import LazyFrame, QueryError, col, lit, scan_frame
from repro.query import plan as p
from repro.stream.equivalence import frames_equal


@pytest.fixture()
def frame():
    rng = np.random.default_rng(7)
    n = 200
    return Frame(
        {
            "a": rng.integers(0, 10, n).astype(np.int64),
            "b": rng.random(n),
            "c": np.array([f"k{i % 5}" for i in range(n)], dtype=object),
            "d": rng.random(n) * 100.0,
        }
    )


class TestCollectMatchesEager:
    def test_filter_select(self, frame):
        lf = scan_frame(frame).filter(col("a") >= 5).select(["a", "c"])
        want = frame.filter(frame["a"] >= 5).select(["a", "c"])
        assert frames_equal(lf.collect(), want)
        assert frames_equal(lf.collect(optimize_plan=False), want)

    def test_with_column_scalar_and_vector(self, frame):
        lf = (
            scan_frame(frame)
            .with_column("e", col("b") * 2.0)
            .with_column("one", lit(1.0))
        )
        want = frame.with_column("e", frame["b"] * 2.0).with_column(
            "one", np.full(frame.num_rows, 1.0)
        )
        assert frames_equal(lf.collect(), want)

    def test_sort_head(self, frame):
        lf = scan_frame(frame).sort_by("c", "a").head(17)
        assert frames_equal(lf.collect(), frame.sort_by("c", "a").head(17))

    def test_groupby_agg_and_size(self, frame):
        lf = scan_frame(frame).groupby("c").agg(
            n="count", total=("b", "sum"), widest=("a", "max")
        )
        want = frame.groupby("c").agg(
            n="count", total=("b", "sum"), widest=("a", "max")
        )
        assert frames_equal(lf.collect(), want)
        assert frames_equal(
            scan_frame(frame).groupby("c").size().collect(),
            frame.groupby("c").agg(count="count"),
        )

    def test_join(self, frame):
        right = Frame(
            {
                "c": np.array([f"k{i}" for i in range(5)], dtype=object),
                "w": np.arange(5, dtype=np.int64),
            }
        )
        lf = scan_frame(frame).join(scan_frame(right), on="c", how="left")
        want = frame.join(right, on=["c"], how="left")
        assert frames_equal(lf.collect(), want)

    def test_map_batch(self, frame):
        lf = scan_frame(frame).map_batch(lambda f: f.head(3), "take3")
        assert frames_equal(lf.collect(), frame.head(3))

    def test_fused_plan_equals_unoptimized(self, frame):
        lf = (
            scan_frame(frame)
            .filter(col("a") >= 2)
            .filter(col("b") < 0.9)
            .select(["b", "c"])
        )
        assert frames_equal(
            lf.collect(), lf.collect(optimize_plan=False)
        )


class TestApiValidation:
    def test_filter_rejects_mask(self, frame):
        with pytest.raises(QueryError):
            scan_frame(frame).filter(frame["a"] >= 5)

    def test_with_column_rejects_array(self, frame):
        with pytest.raises(QueryError):
            scan_frame(frame).with_column("e", frame["b"])

    def test_join_needs_lazyframe(self, frame):
        with pytest.raises(QueryError):
            scan_frame(frame).join(frame, on="c")

    def test_sort_needs_keys(self, frame):
        with pytest.raises(QueryError):
            scan_frame(frame).sort_by()

    def test_filter_on_missing_column_raises_at_collect(self, frame):
        lf = scan_frame(frame).filter(col("zzz") > 1)
        with pytest.raises(KeyError):
            lf.collect()

    def test_plan_is_immutable_across_builders(self, frame):
        base = scan_frame(frame)
        filtered = base.filter(col("a") > 1)
        assert base.plan is not filtered.plan
        assert isinstance(base.plan, p.ScanFrame)


class TestOptimizerShapes:
    def test_adjacent_filters_fuse(self, frame):
        lf = scan_frame(frame).filter(col("a") >= 2).filter(col("b") < 0.5)
        opt = lf.optimized_plan()
        assert isinstance(opt, p.Filter)
        assert isinstance(opt.child, p.ScanFrame)
        assert "&" in opt.predicate.describe()
        # the logical plan still shows the two filters as written
        assert isinstance(lf.plan, p.Filter)
        assert isinstance(lf.plan.child, p.Filter)

    def test_filter_then_select_fuses(self, frame):
        opt = (
            scan_frame(frame)
            .filter(col("a") >= 2)
            .select(["b", "c"])
            .optimized_plan()
        )
        assert isinstance(opt, p.FusedFilterSelect)
        assert opt.columns == ("b", "c")
        # projection pushdown narrowed the scan to what the fused node
        # reads (predicate column + surviving columns, schema order)
        assert isinstance(opt.child, p.ScanFrame)
        assert opt.child.columns == ("a", "b", "c")

    def test_select_then_filter_fuses_when_legal(self, frame):
        opt = (
            scan_frame(frame)
            .select(["a", "b"])
            .filter(col("a") >= 2)
            .optimized_plan()
        )
        assert isinstance(opt, p.FusedFilterSelect)

    def test_select_then_filter_on_dropped_column_stays_eager(self, frame):
        lf = scan_frame(frame).select(["b", "c"]).filter(col("a") >= 2)
        opt = lf.optimized_plan()
        # must NOT fuse: eager semantics raise KeyError for the dropped
        # column, and the optimized plan must preserve that
        assert isinstance(opt, p.Filter)
        with pytest.raises(KeyError):
            lf.collect()
        with pytest.raises(KeyError):
            lf.collect(optimize_plan=False)

    def test_filter_sinks_below_sort(self, frame):
        opt = (
            scan_frame(frame)
            .sort_by("b")
            .filter(col("a") >= 5)
            .optimized_plan()
        )
        assert isinstance(opt, p.Sort)
        assert isinstance(opt.child, p.Filter)

    def test_filter_sinks_below_with_column(self, frame):
        opt = (
            scan_frame(frame)
            .with_column("e", col("b") * 2.0)
            .filter(col("a") >= 5)
            .optimized_plan()
        )
        assert isinstance(opt, p.WithColumn)

    def test_filter_on_derived_column_does_not_sink(self, frame):
        opt = (
            scan_frame(frame)
            .with_column("e", col("b") * 2.0)
            .filter(col("e") >= 0.5)
            .optimized_plan()
        )
        assert isinstance(opt, p.Filter)
        assert isinstance(opt.child, p.WithColumn)

    def test_groupby_prunes_scan_to_keys_and_sources(self, frame):
        opt = (
            scan_frame(frame)
            .groupby("c")
            .agg(total=("b", "sum"))
            .optimized_plan()
        )
        assert isinstance(opt, p.GroupByAgg)
        assert opt.child.columns == ("b", "c")

    def test_map_batch_is_a_barrier(self, frame):
        opt = (
            scan_frame(frame)
            .map_batch(lambda f: f, "noop")
            .filter(col("a") >= 5)
            .optimized_plan()
        )
        assert isinstance(opt, p.Filter)
        assert isinstance(opt.child, p.MapBatch)
        # nothing pushed below the barrier: the scan stays unpruned
        assert opt.child.child.columns is None

    def test_sort_with_pruning_keeps_sort_keys(self, frame):
        opt = (
            scan_frame(frame)
            .sort_by("d")
            .select(["a"])
            .optimized_plan()
        )
        leaf = p.scan_leaves(opt)[0]
        assert set(leaf.columns) == {"a", "d"}


class TestExplain:
    def test_explain_shows_both_plans(self, frame):
        lf = (
            scan_frame(frame, label="ras")
            .filter(col("a") >= 2)
            .select(["b", "c"])
        )
        text = lf.explain()
        assert "== logical plan ==" in text
        assert "== optimized plan ==" in text
        assert "FILTER+SELECT" in text
        assert "ras [a, b, c]" in text

    def test_explain_unoptimized_only(self, frame):
        text = scan_frame(frame).filter(col("a") >= 2).explain(
            optimized=False
        )
        assert "== logical plan ==" in text
        assert "== optimized plan ==" not in text
