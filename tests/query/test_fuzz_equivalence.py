"""Property fuzz: random plan shapes over random small frames must
collect bit-identically to the eager chain — optimized or not.

Each random operation is generated as a pair: the lazy builder call and
the equivalent *direct numpy/eager* computation (never routed through
the expression DSL), so the oracle is independent of the engine under
test. Frames include NaNs, ±inf, duplicate keys and empty selections.
"""

import numpy as np
import pytest

from repro.frame import Frame
from repro.query import col, lit, scan_frame
from repro.stream.equivalence import frames_equal

N_CASES = 60


def random_frame(rng: np.random.Generator) -> Frame:
    n = int(rng.integers(0, 40))
    f = rng.random(n) * 10.0
    # salt in the hostile float values
    for value in (np.nan, np.inf, -np.inf):
        idx = rng.integers(0, n + 1)
        if idx < n:
            f[idx] = value
    return Frame(
        {
            "a": rng.integers(-3, 4, n).astype(np.int64),
            "f": f,
            "s": np.array(
                [f"v{int(i)}" for i in rng.integers(0, 4, n)], dtype=object
            ),
        }
    )


def random_predicate(rng, columns):
    """(expr, eager_fn) pairs built side by side, depth <= 3."""

    def leaf():
        choice = rng.integers(0, 4)
        if choice == 0 and "a" in columns:
            v = int(rng.integers(-3, 4))
            op = rng.choice([">", ">=", "<", "<=", "==", "!="])
            return _cmp("a", op, v)
        if choice == 1 and "f" in columns:
            v = float(rng.choice([0.0, 2.5, np.nan, np.inf]))
            op = rng.choice([">", ">=", "<", "<=", "==", "!="])
            return _cmp("f", op, v)
        if choice == 2 and "s" in columns:
            vals = [f"v{i}" for i in range(int(rng.integers(0, 4)))]
            return (col("s").isin(vals), lambda fr: fr.mask_isin("s", vals))
        name = rng.choice(sorted(columns))
        if name == "s":
            return (col("s") == "v1", lambda fr: fr["s"] == "v1")
        return (col(name) >= 0, lambda fr: fr[name] >= 0)

    def _cmp(name, op, v):
        ops = {
            ">": np.greater, ">=": np.greater_equal,
            "<": np.less, "<=": np.less_equal,
            "==": np.equal, "!=": np.not_equal,
        }
        expr = getattr(col(name), {
            ">": "__gt__", ">=": "__ge__", "<": "__lt__",
            "<=": "__le__", "==": "__eq__", "!=": "__ne__",
        }[op])(v)
        return (expr, lambda fr: np.asarray(ops[op](fr[name], v), dtype=bool))

    def build(depth):
        if depth == 0 or rng.random() < 0.4:
            return leaf()
        le, lf_ = build(depth - 1)
        re_, rf = build(depth - 1)
        if rng.random() < 0.2:
            return (~le, lambda fr: ~np.asarray(lf_(fr), dtype=bool))
        if rng.random() < 0.5:
            return (le & re_, lambda fr: lf_(fr) & rf(fr))
        return (le | re_, lambda fr: lf_(fr) | rf(fr))

    return build(int(rng.integers(1, 3)))


def random_chain(rng, frame):
    """Apply 1–5 random ops to both a LazyFrame and the eager frame."""
    lf = scan_frame(frame)
    eager = frame
    for _ in range(int(rng.integers(1, 6))):
        columns = set(eager.columns)
        op = rng.integers(0, 6)
        if op == 0:  # filter
            expr, fn = random_predicate(rng, columns)
            lf = lf.filter(expr)
            eager = eager.filter(np.asarray(fn(eager), dtype=bool))
        elif op == 1 and columns:  # select a random subset
            k = int(rng.integers(1, len(columns) + 1))
            names = list(rng.choice(sorted(columns), size=k, replace=False))
            lf = lf.select(names)
            eager = eager.select(names)
        elif op == 2 and ("f" in columns or "a" in columns):  # with_column
            src = "f" if "f" in columns else "a"
            v = float(rng.choice([2.0, -1.0, np.nan]))
            lf = lf.with_column("w", col(src) * v)
            eager = eager.with_column("w", eager[src] * v)
        elif op == 3 and columns:  # stable sort
            k = int(rng.integers(1, len(columns) + 1))
            keys = list(rng.choice(sorted(columns), size=k, replace=False))
            asc = bool(rng.integers(0, 2))
            lf = lf.sort_by(*keys, ascending=asc)
            eager = eager.sort_by(*keys, ascending=asc)
        elif op == 4:  # head
            n = int(rng.integers(0, 10))
            lf = lf.head(n)
            eager = eager.head(n)
        else:  # barrier kernel
            lf = lf.map_batch(lambda f: f.head(25), "cap25")
            eager = eager.head(25)
    # sometimes terminate in a group-by aggregation
    if rng.random() < 0.3 and {"s", "f"} <= set(eager.columns):
        lf = lf.groupby("s").agg(n="count", lo=("f", "min"))
        eager = eager.groupby("s").agg(n="count", lo=("f", "min"))
    return lf, eager


@pytest.mark.parametrize("case", range(N_CASES))
def test_random_plan_bit_identical_to_eager(case):
    rng = np.random.default_rng(1000 + case)
    frame = random_frame(rng)
    lf, want = random_chain(rng, frame)
    got_opt = lf.collect()
    got_raw = lf.collect(optimize_plan=False)
    assert frames_equal(got_opt, want), lf.explain()
    assert frames_equal(got_raw, want), lf.explain(optimized=False)


def test_fuzz_covers_nontrivial_results():
    """Meta-check: the generator isn't fuzzing empty frames only."""
    nonempty = 0
    for case in range(N_CASES):
        rng = np.random.default_rng(1000 + case)
        _, want = random_chain(rng, random_frame(rng))
        if want.num_rows:
            nonempty += 1
    assert nonempty >= N_CASES // 4
