"""StageTimer/render_timings: rates, zero-duration stages, wide labels,
and the tracer bridge."""

import math

from repro.obs import Tracer
from repro.perf import StageTimer, StageTiming, render_timings


class TestRowsPerS:
    def test_normal_rate(self):
        t = StageTiming("s", wall_s=2.0, rows=100)
        assert t.rows_per_s == 50.0

    def test_no_rows_is_nan(self):
        assert math.isnan(StageTiming("s", wall_s=1.0).rows_per_s)

    def test_zero_duration_is_nan(self):
        # a stage can finish inside one clock tick; the rate must not
        # divide by zero or render as "inf"
        assert math.isnan(StageTiming("s", wall_s=0.0, rows=100).rows_per_s)

    def test_render_matches_nan_semantics(self):
        out = render_timings([
            StageTiming("instant", wall_s=0.0, rows=100),
            StageTiming("counted", wall_s=2.0, rows=100),
            StageTiming("uncounted", wall_s=1.0),
        ])
        lines = {line.split()[0]: line for line in out.splitlines()}
        assert lines["instant"].rstrip().endswith("-")
        assert lines["counted"].rstrip().endswith("50")
        assert lines["uncounted"].rstrip().endswith("-")
        assert "inf" not in out


class TestRenderWidth:
    def test_long_labels_widen_the_column(self):
        long = "a.particularly.long.stage.name.well.past.the.default"
        out = render_timings([
            StageTiming(long, wall_s=0.5, rows=10),
            StageTiming("short", wall_s=0.5, rows=10),
        ])
        header, first, second, total = out.splitlines()[1:]
        width = len(long)
        # every row pads the stage column to the longest label
        assert first.startswith(long + " ")
        assert second.startswith("short".ljust(width) + " ")
        assert total.startswith("total".ljust(width) + " ")
        assert header.startswith("stage".ljust(width) + " ")

    def test_note_counts_toward_width(self):
        label = "stage.with.a.long.note"
        note = "forty.two.workers.on.a.rainy.day"
        out = render_timings([StageTiming(label, 0.1, note=note)])
        assert f"{label}[{note}]" in out


class TestTracerBridge:
    def test_stage_records_and_spans(self):
        tracer = Tracer()
        timer = StageTimer()
        with tracer.activate(root="run"):
            with timer.stage("work") as st:
                st.rows = 5
                st.note = "cached"
        (timing,) = timer.timings
        assert (timing.stage, timing.rows, timing.note) == (
            "work", 5, "cached"
        )
        span = next(s for s in tracer.spans if s.name == "work")
        assert (span.rows, span.note) == (5, "cached")
        assert abs(span.wall_s - timing.wall_s) < 1e-9

    def test_stage_without_tracer_unchanged(self):
        timer = StageTimer()
        with timer.stage("plain") as st:
            st.rows = 3
        (timing,) = timer.timings
        assert timing.rows == 3 and timing.wall_s >= 0.0

    def test_nested_stages_nest_spans(self):
        tracer = Tracer()
        timer = StageTimer()
        with tracer.activate(root="run"):
            with timer.stage("outer"):
                with timer.stage("inner"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
