"""Unit tests for the job-related filter (§IV-C)."""

import pytest

from repro.core.classify import FailureOrigin
from repro.core.filtering import JobRelatedFilter
from repro.frame import Frame
from tests.core.helpers import jobs


def interruptions(rows):
    """(event_id, job_id, t, errcode, executable, mp) rows."""
    return Frame.from_rows(
        [
            {
                "event_id": eid,
                "job_id": jid,
                "event_time": float(t),
                "errcode": e,
                "executable": exe,
                "mp": mp,
            }
            for eid, jid, t, e, exe, mp in rows
        ],
        columns=["event_id", "job_id", "event_time", "errcode", "executable", "mp"],
    )


SYSTEM = {"DDR": FailureOrigin.SYSTEM}
APP = {"SEGV": FailureOrigin.APPLICATION}


class TestSystemRule:
    def test_chain_without_clean_run_is_redundant(self):
        """Two kills, same type, same midplane, nothing ran between."""
        ints = interruptions(
            [
                (10, 1, 1000.0, "DDR", "/a", 0),
                (11, 2, 4000.0, "DDR", "/b", 0),
            ]
        )
        jl = jobs(
            [
                (1, "/a", 500.0, 1000.0, "R00-M0", 1),
                (2, "/b", 3500.0, 4000.0, "R00-M0", 1),
            ]
        )
        redundant = JobRelatedFilter().redundant_ids(ints, jl, SYSTEM)
        assert redundant == {11}

    def test_clean_run_breaks_chain(self):
        ints = interruptions(
            [
                (10, 1, 1000.0, "DDR", "/a", 0),
                (11, 2, 9000.0, "DDR", "/b", 0),
            ]
        )
        jl = jobs(
            [
                (1, "/a", 500.0, 1000.0, "R00-M0", 1),
                (3, "/ok", 2000.0, 3000.0, "R00-M0", 1),  # completed cleanly
                (2, "/b", 8500.0, 9000.0, "R00-M0", 1),
            ]
        )
        redundant = JobRelatedFilter().redundant_ids(ints, jl, SYSTEM)
        assert redundant == set()

    def test_transitive_chain(self):
        """B redundant to A, C redundant to B => both redundant."""
        ints = interruptions(
            [
                (10, 1, 1000.0, "DDR", "/a", 0),
                (11, 2, 2000.0, "DDR", "/b", 0),
                (12, 3, 3000.0, "DDR", "/c", 0),
            ]
        )
        jl = jobs(
            [
                (1, "/a", 500.0, 1000.0, "R00-M0", 1),
                (2, "/b", 1500.0, 2000.0, "R00-M0", 1),
                (3, "/c", 2500.0, 3000.0, "R00-M0", 1),
            ]
        )
        redundant = JobRelatedFilter().redundant_ids(ints, jl, SYSTEM)
        assert redundant == {11, 12}

    def test_different_midplanes_not_redundant(self):
        ints = interruptions(
            [
                (10, 1, 1000.0, "DDR", "/a", 0),
                (11, 2, 2000.0, "DDR", "/b", 5),
            ]
        )
        jl = jobs(
            [
                (1, "/a", 500.0, 1000.0, "R00-M0", 1),
                (2, "/b", 1500.0, 2000.0, "R02-M1", 1),
            ]
        )
        assert JobRelatedFilter().redundant_ids(ints, jl, SYSTEM) == set()

    def test_different_errcodes_not_redundant(self):
        ints = interruptions(
            [
                (10, 1, 1000.0, "DDR", "/a", 0),
                (11, 2, 2000.0, "L1", "/b", 0),
            ]
        )
        jl = jobs(
            [
                (1, "/a", 500.0, 1000.0, "R00-M0", 1),
                (2, "/b", 1500.0, 2000.0, "R00-M0", 1),
            ]
        )
        origins = {"DDR": FailureOrigin.SYSTEM, "L1": FailureOrigin.SYSTEM}
        assert JobRelatedFilter().redundant_ids(ints, jl, origins) == set()


class TestApplicationRule:
    def test_resubmitted_buggy_code_redundant_anywhere(self):
        """Same executable, same errcode, different location — still
        redundant (the user resubmitted the same bug)."""
        ints = interruptions(
            [
                (10, 1, 1000.0, "SEGV", "/buggy", 0),
                (11, 2, 50000.0, "SEGV", "/buggy", 40),
            ]
        )
        jl = jobs(
            [
                (1, "/buggy", 500.0, 1000.0, "R00-M0", 1),
                (2, "/buggy", 49500.0, 50000.0, "R24-M0", 1),
            ]
        )
        assert JobRelatedFilter().redundant_ids(ints, jl, APP) == {11}

    def test_different_executable_not_redundant(self):
        ints = interruptions(
            [
                (10, 1, 1000.0, "SEGV", "/buggy1", 0),
                (11, 2, 50000.0, "SEGV", "/buggy2", 0),
            ]
        )
        jl = jobs(
            [
                (1, "/buggy1", 500.0, 1000.0, "R00-M0", 1),
                (2, "/buggy2", 49500.0, 50000.0, "R00-M0", 1),
            ]
        )
        assert JobRelatedFilter().redundant_ids(ints, jl, APP) == set()

    def test_empty(self):
        assert JobRelatedFilter().redundant_ids(
            interruptions([]), jobs([(1, "/x", 0.0, 10.0, "R00-M0", 1)]), {}
        ) == set()
