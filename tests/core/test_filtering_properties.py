"""Property-based tests for the filtering stages."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import FatalEventTable
from repro.core.filtering import SpatialFilter, TemporalFilter
from repro.frame import Frame

_TYPES = ["A", "B", "C"]
_LOCS = ["R00-M0", "R00-M1", "R10-M0", "R47-M1"]


@st.composite
def event_tables(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    times = sorted(
        draw(
            st.lists(
                st.floats(0, 1e5, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    types = draw(st.lists(st.sampled_from(_TYPES), min_size=n, max_size=n))
    locs = draw(st.lists(st.sampled_from(_LOCS), min_size=n, max_size=n))
    frame = Frame(
        {
            "event_id": np.arange(n, dtype=np.int64),
            "event_time": np.asarray(times, dtype=np.float64),
            "errcode": np.array(types, dtype=object),
            "component": np.array(["KERNEL"] * n, dtype=object),
            "location": np.array(locs, dtype=object),
            "mp_lo": np.zeros(n, dtype=np.int64),
            "mp_hi": np.zeros(n, dtype=np.int64),
        }
    )
    return FatalEventTable(frame)


@given(event_tables(), st.floats(1.0, 1e4))
@settings(max_examples=80, deadline=None)
def test_temporal_filter_idempotent(events, threshold):
    f = TemporalFilter(threshold=threshold)
    once = f.apply(events)
    twice = f.apply(once)
    assert list(twice.frame["event_id"]) == list(once.frame["event_id"])


@given(event_tables(), st.floats(1.0, 1e4))
@settings(max_examples=80, deadline=None)
def test_spatial_filter_idempotent(events, threshold):
    f = SpatialFilter(threshold=threshold)
    once = f.apply(events)
    twice = f.apply(once)
    assert list(twice.frame["event_id"]) == list(once.frame["event_id"])


@given(event_tables())
@settings(max_examples=80, deadline=None)
def test_filters_keep_subsets_with_first_survivor(events):
    for f in (TemporalFilter(300.0), SpatialFilter(300.0)):
        out = f.apply(events)
        kept = set(out.frame["event_id"])
        assert kept <= set(events.frame["event_id"])
        if len(events):
            # the globally earliest event always survives
            first = events.frame.sort_by("event_time", "event_id").row(0)
            assert first["event_id"] in kept


@given(event_tables())
@settings(max_examples=60, deadline=None)
def test_spatial_threshold_monotone(events):
    """A larger threshold never keeps more events."""
    small = SpatialFilter(60.0).apply(events)
    large = SpatialFilter(3600.0).apply(events)
    assert len(large) <= len(small)


@given(event_tables())
@settings(max_examples=60, deadline=None)
def test_survivors_of_each_type_spaced(events):
    thr = 500.0
    out = SpatialFilter(thr).apply(events)
    for code in _TYPES:
        mask = out.frame.mask_eq("errcode", code)
        times = np.sort(out.frame["event_time"][mask])
        if len(times) > 1:
            assert (np.diff(times) > thr).all()
