"""Builders for hand-crafted co-analysis test scenarios."""

from __future__ import annotations

from repro.logs.job import JobLog, JobRecord
from repro.logs.ras import RasLog, RasRecord


def ras(records: list[tuple]) -> RasLog:
    """Build a RAS log from (recid, errcode, severity, t, location) rows."""
    return RasLog.from_records(
        [
            RasRecord(
                recid=recid,
                msg_id="MSG",
                component="KERNEL",
                subcomponent="unit",
                errcode=errcode,
                severity=severity,
                event_time=float(t),
                location=location,
                serialnumber="S",
                message="m",
            )
            for recid, errcode, severity, t, location in records
        ]
    )


def jobs(records: list[tuple]) -> JobLog:
    """Build a job log from
    (job_id, executable, start, end, location, size[, user, project]) rows."""
    out = []
    for r in records:
        job_id, executable, start, end, location, size = r[:6]
        user = r[6] if len(r) > 6 else "alice"
        project = r[7] if len(r) > 7 else "proj"
        out.append(
            JobRecord(
                job_id=job_id,
                job_name="j",
                executable=executable,
                queued_time=float(start) - 10.0,
                start_time=float(start),
                end_time=float(end),
                location=location,
                user=user,
                project=project,
                size_midplanes=size,
            )
        )
    return JobLog.from_records(out)
