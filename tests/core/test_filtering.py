"""Unit tests for temporal, spatial, and causality filtering."""

import pytest

from repro.core.events import fatal_event_table
from repro.core.filtering import (
    CausalityFilter,
    FilterChain,
    ReferenceCausalityFilter,
    ReferenceSpatialFilter,
    ReferenceTemporalFilter,
    SpatialFilter,
    TemporalFilter,
)
from tests.core.helpers import ras


def table(rows):
    return fatal_event_table(ras(rows))


class TestTemporalFilter:
    def test_same_location_chain_collapsed(self):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "A", "FATAL", 100.0, "R00-M0"),
                (3, "A", "FATAL", 250.0, "R00-M0"),
                (4, "A", "FATAL", 1000.0, "R00-M0"),
            ]
        )
        out = TemporalFilter(threshold=300.0).apply(t)
        assert list(out.frame["event_time"]) == [0.0, 1000.0]

    def test_chain_semantics_extend_window(self):
        """Events 250 s apart each: the chain keeps suppressing even
        past the first event's window."""
        rows = [(i, "A", "FATAL", i * 250.0, "R00-M0") for i in range(10)]
        out = TemporalFilter(threshold=300.0).apply(table(rows))
        assert len(out) == 1

    @pytest.mark.parametrize("make", [TemporalFilter, ReferenceTemporalFilter])
    def test_dropped_events_extend_suppression_window(self, make):
        """Regression for the mislabeled chain semantics: N events each
        threshold−ε apart collapse to exactly 1, because every *dropped*
        event still extends the suppression window — the filter does NOT
        measure from the previous kept event (that would keep every
        second one)."""
        eps = 1.0
        rows = [
            (i, "A", "FATAL", i * (300.0 - eps), "R00-M0") for i in range(20)
        ]
        out = make(threshold=300.0).apply(table(rows))
        assert len(out) == 1
        assert out.frame["event_id"][0] == 0

    def test_different_locations_not_collapsed(self):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "A", "FATAL", 10.0, "R00-M1"),
            ]
        )
        assert len(TemporalFilter(threshold=300.0).apply(t)) == 2

    def test_different_errcodes_not_collapsed(self):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "B", "FATAL", 10.0, "R00-M0"),
            ]
        )
        assert len(TemporalFilter(threshold=300.0).apply(t)) == 2

    def test_empty(self):
        assert len(TemporalFilter().apply(table([]))) == 0


class TestSpatialFilter:
    def test_fanout_across_locations_collapsed(self):
        rows = [
            (i, "A", "FATAL", float(i), f"R00-M0-N{i:02d}") for i in range(10)
        ]
        out = SpatialFilter(threshold=300.0).apply(table(rows))
        assert len(out) == 1
        assert out.frame["event_time"][0] == 0.0  # earliest kept

    def test_gap_larger_than_threshold_splits(self):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "A", "FATAL", 100.0, "R10-M1"),
                (3, "A", "FATAL", 10000.0, "R20-M0"),
            ]
        )
        out = SpatialFilter(threshold=300.0).apply(t)
        assert list(out.frame["event_time"]) == [0.0, 10000.0]

    def test_types_independent(self):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "B", "FATAL", 1.0, "R10-M0"),
            ]
        )
        assert len(SpatialFilter().apply(t)) == 2


class TestCausalityFilter:
    def _cascade_rows(self, n_bursts=5):
        rows = []
        rid = 0
        for k in range(n_bursts):
            base = k * 10000.0
            rows.append((rid, "PANIC", "FATAL", base, f"R0{k % 8}-M0"))
            rid += 1
            rows.append((rid, "TORUS", "FATAL", base + 30.0, f"R0{k % 8}-M1"))
            rid += 1
        return rows

    def test_follower_removed(self):
        f = CausalityFilter(window=120.0, min_support=3, min_confidence=0.5)
        out = f.apply(table(self._cascade_rows()))
        assert set(out.frame["errcode"]) == {"PANIC"}
        assert len(out) == 5

    def test_rule_learned(self):
        f = CausalityFilter(window=120.0, min_support=3, min_confidence=0.5)
        f.apply(table(self._cascade_rows()))
        assert any(
            r.trigger == "PANIC" and r.follower == "TORUS" for r in f.rules
        )

    def test_insufficient_support_keeps_followers(self):
        f = CausalityFilter(window=120.0, min_support=3, min_confidence=0.5)
        out = f.apply(table(self._cascade_rows(n_bursts=2)))
        assert len(out) == 4

    def test_independent_follower_occurrences_kept(self):
        rows = self._cascade_rows() + [
            (100, "TORUS", "FATAL", 999999.0, "R40-M0")
        ]
        f = CausalityFilter(window=120.0, min_support=3, min_confidence=0.5)
        out = f.apply(table(rows))
        # the lone TORUS far from any PANIC survives
        assert (out.frame["errcode"] == "TORUS").sum() == 1

    def test_low_confidence_no_rule(self):
        rows = self._cascade_rows(n_bursts=3) + [
            (200 + i, "TORUS", "FATAL", 5e5 + i * 1e4, "R40-M0")
            for i in range(10)
        ]
        f = CausalityFilter(window=120.0, min_support=3, min_confidence=0.5)
        f.apply(table(rows))
        assert not any(r.follower == "TORUS" for r in f.rules)


class TestWindowBoundaryInclusivity:
    """Events exactly ``threshold`` / ``window`` apart sit *inside* the
    inclusive window — pinned on kernels and references alike so a
    vectorization can never silently flip a ``<=`` into a ``<``."""

    @pytest.mark.parametrize("make", [TemporalFilter, ReferenceTemporalFilter])
    def test_temporal_exact_threshold_suppresses(self, make):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "A", "FATAL", 300.0, "R00-M0"),
            ]
        )
        assert len(make(threshold=300.0).apply(t)) == 1

    @pytest.mark.parametrize("make", [TemporalFilter, ReferenceTemporalFilter])
    def test_temporal_just_past_threshold_splits(self, make):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "A", "FATAL", 300.0001, "R00-M0"),
            ]
        )
        assert len(make(threshold=300.0).apply(t)) == 2

    @pytest.mark.parametrize("make", [SpatialFilter, ReferenceSpatialFilter])
    def test_spatial_exact_threshold_suppresses(self, make):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "A", "FATAL", 300.0, "R17-M1"),
            ]
        )
        assert len(make(threshold=300.0).apply(t)) == 1

    @pytest.mark.parametrize("make", [SpatialFilter, ReferenceSpatialFilter])
    def test_spatial_just_past_threshold_splits(self, make):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "A", "FATAL", 300.0001, "R17-M1"),
            ]
        )
        assert len(make(threshold=300.0).apply(t)) == 2

    @pytest.mark.parametrize(
        "make", [CausalityFilter, ReferenceCausalityFilter]
    )
    def test_causal_trigger_exactly_window_back_counts(self, make):
        """A trigger exactly ``window`` seconds before the follower is
        inside the mining window: rules form and followers drop."""
        rows = []
        for k in range(4):
            base = k * 10000.0
            rows.append((2 * k, "PANIC", "FATAL", base, "R00-M0"))
            rows.append((2 * k + 1, "TORUS", "FATAL", base + 120.0, "R00-M1"))
        f = make(window=120.0, min_support=3, min_confidence=0.5)
        out = f.apply(table(rows))
        assert set(out.frame["errcode"]) == {"PANIC"}
        assert any(
            r.trigger == "PANIC" and r.follower == "TORUS" for r in f.rules
        )

    @pytest.mark.parametrize(
        "make", [CausalityFilter, ReferenceCausalityFilter]
    )
    def test_causal_trigger_just_outside_window_ignored(self, make):
        rows = []
        for k in range(4):
            base = k * 10000.0
            rows.append((2 * k, "PANIC", "FATAL", base, "R00-M0"))
            rows.append(
                (2 * k + 1, "TORUS", "FATAL", base + 120.0001, "R00-M1")
            )
        f = make(window=120.0, min_support=3, min_confidence=0.5)
        out = f.apply(table(rows))
        assert len(out) == 8
        assert f.rules == []


class TestThresholdValidation:
    @pytest.mark.parametrize("make", [TemporalFilter, ReferenceTemporalFilter,
                                      SpatialFilter, ReferenceSpatialFilter])
    def test_negative_threshold_rejected(self, make):
        with pytest.raises(ValueError, match="non-negative"):
            make(threshold=-1.0)

    @pytest.mark.parametrize(
        "make", [CausalityFilter, ReferenceCausalityFilter]
    )
    def test_negative_window_rejected(self, make):
        with pytest.raises(ValueError, match="non-negative"):
            make(window=-0.5)

    def test_zero_threshold_allowed(self):
        t = table(
            [
                (1, "A", "FATAL", 0.0, "R00-M0"),
                (2, "A", "FATAL", 0.0, "R00-M0"),
                (3, "A", "FATAL", 5.0, "R00-M0"),
            ]
        )
        # zero threshold still collapses exact-duplicate timestamps
        assert len(TemporalFilter(threshold=0.0).apply(t)) == 2


class TestFilterChain:
    def test_stats_recorded(self):
        rows = [
            (i, "A", "FATAL", float(i % 50), f"R00-M0-N{i % 16:02d}")
            for i in range(100)
        ]
        chain = FilterChain()
        out = chain.apply(table(rows))
        assert chain.stats.raw == 100
        assert chain.stats.after_causal == len(out) == 1
        assert chain.stats.compression_ratio == pytest.approx(0.99)

    def test_temporal_table_retained(self):
        chain = FilterChain()
        chain.apply(table([(1, "A", "FATAL", 0.0, "R00-M0")]))
        assert chain.temporal_table is not None
        assert len(chain.temporal_table) == 1

    def test_empty_chain(self):
        chain = FilterChain()
        out = chain.apply(table([]))
        assert len(out) == 0
        assert chain.stats.compression_ratio == 0.0

    def test_stage_timings_recorded(self):
        chain = FilterChain()
        chain.apply(table([(1, "A", "FATAL", 0.0, "R00-M0")]))
        stages = [t.stage for t in chain.timings]
        assert stages == ["filter.temporal", "filter.spatial", "filter.causal"]
        assert all(t.rows == 1 for t in chain.timings)
        assert all(t.wall_s >= 0.0 for t in chain.timings)
