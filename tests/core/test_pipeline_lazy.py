"""The lazy pipeline (`CoAnalysis(lazy=True)`) is the eager pipeline,
bit for bit: full results compared with the streaming equivalence
differ — events, matches, filter stats, windows, Weibull bits,
observations — across in-memory, file-scan and store-scan sources,
plus fuzzed time-window cuts of the trace."""

import numpy as np
import pytest

from repro.core import CoAnalysis
from repro.logs import write_job_log, write_ras_log
from repro.logs.job import JobLog
from repro.logs.ras import RasLog
from repro.obs import Tracer
from repro.obs.metrics import get_metrics
from repro.parallel import ParseCache
from repro.query import scan_ras_log, scan_store
from repro.simulate import CalibrationProfile, IntrepidSimulation
from repro.store import ShardedDataset
from repro.stream.equivalence import diff_results


@pytest.fixture(scope="module")
def trace():
    return IntrepidSimulation(CalibrationProfile(seed=31, scale=0.02)).run()


def run_eager(ras_log, job_log):
    return CoAnalysis().run(ras_log, job_log, source="eager")


def run_lazy(ras, job_log):
    return CoAnalysis(lazy=True).run_lazy(ras, job_log, source="lazy")


class TestBitIdentity:
    def test_in_memory(self, trace):
        eager = run_eager(trace.ras_log, trace.job_log)
        lazy = CoAnalysis(lazy=True).run(
            trace.ras_log, trace.job_log, source="lazy"
        )
        assert diff_results(lazy, eager) == []

    def test_fuzzed_window_cuts(self, trace):
        t = trace.ras_log.frame["event_time"]
        t0, t1 = float(t.min()), float(t.max())
        rng = np.random.default_rng(17)
        for _ in range(4):
            lo, hi = np.sort(rng.uniform(t0, t1, size=2))
            cut = RasLog(trace.ras_log.frame.filter((t >= lo) & (t < hi)))
            job_t = trace.job_log.frame["start_time"]
            job_cut = JobLog(
                trace.job_log.frame.filter((job_t >= lo) & (job_t < hi))
            )
            eager = run_eager(cut, job_cut)
            lazy = CoAnalysis(lazy=True).run(cut, job_cut, source="lazy")
            assert diff_results(lazy, eager) == [], (lo, hi)

    def test_degenerate_empty_ras(self, trace):
        empty = RasLog(trace.ras_log.frame.head(0))
        eager = run_eager(empty, trace.job_log)
        lazy = CoAnalysis(lazy=True).run(empty, trace.job_log)
        assert diff_results(lazy, eager) == []

    def test_scan_log_leaf(self, tmp_path, trace):
        ras_path = tmp_path / "ras.log"
        job_path = tmp_path / "job.log"
        write_ras_log(trace.ras_log, ras_path)
        write_job_log(trace.job_log, job_path)
        from repro.logs import read_job_log, read_ras_log

        ras_log = read_ras_log(ras_path)
        job_log = read_job_log(job_path)
        eager = run_eager(ras_log, job_log)
        # file-backed lazy run with a warmed cache: the scan is a plan
        # leaf, so the projection pushdown reaches the cache hit
        cache = ParseCache(tmp_path / "cache")
        read_ras_log(ras_path, cache=cache)  # warm
        info: dict = {}
        lazy = run_lazy(
            scan_ras_log(ras_path, cache=cache, info=info), job_log
        )
        assert info["cache_status"] == "hit"
        assert diff_results(lazy, eager) == []

    def test_scan_store_leaf(self, tmp_path, trace):
        ds = ShardedDataset.create(tmp_path / "store")
        ds.add_machine_trace(
            "m0", trace.ras_log, trace.job_log, windows=3
        )
        eager = run_eager(trace.ras_log, trace.job_log)
        lazy = run_lazy(scan_store(ds, "m0", "ras"), trace.job_log)
        assert diff_results(lazy, eager) == []


class TestObservability:
    def test_plan_spans_emitted(self, trace):
        tracer = Tracer()
        with tracer.activate(root="run"):
            CoAnalysis(lazy=True).run(trace.ras_log, trace.job_log)
        names = {s.name for s in tracer.spans}
        assert "query.collect" in names
        assert "query.scan" in names
        assert "query.map" in names
        # severity filter + projection fused into one physical node
        assert "query.filter+select" in names

    def test_materialization_metrics_tracked(self, trace):
        registry = get_metrics()
        before = registry.value("query.rows.materialized") or 0
        CoAnalysis(lazy=True).run(trace.ras_log, trace.job_log)
        after = registry.value("query.rows.materialized") or 0
        assert after > before
        peak = registry.value("query.peak_intermediate_rows", kind="gauge")
        assert peak is not None and peak >= len(trace.ras_log)

    def test_timings_cover_same_stages(self, trace):
        eager = run_eager(trace.ras_log, trace.job_log)
        lazy = CoAnalysis(lazy=True).run(trace.ras_log, trace.job_log)
        eager_stages = {t.stage for t in eager.timings}
        lazy_stages = {t.stage for t in lazy.timings}
        for stage in (
            "extract",
            "filter.temporal",
            "filter.spatial",
            "filter.causal",
            "match",
        ):
            assert stage in eager_stages
            assert stage in lazy_stages
