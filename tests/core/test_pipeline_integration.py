"""Integration tests: the full co-analysis on a simulated trace."""

import numpy as np
import pytest

from repro.core import CoAnalysis
from repro.core.identify import TypeBehavior
from repro.simulate import CalibrationProfile, IntrepidSimulation


@pytest.fixture(scope="module")
def trace():
    # Large enough for every analysis to have data, small enough for CI.
    return IntrepidSimulation(CalibrationProfile(seed=2011, scale=0.3)).run()


@pytest.fixture(scope="module")
def result(trace):
    return CoAnalysis().run(trace.ras_log, trace.job_log)


class TestFiltering:
    def test_heavy_compression(self, result):
        assert result.filter_stats.compression_ratio > 0.9

    def test_filtered_count_near_truth(self, trace, result):
        truth = len(trace.ground_truth.incidents)
        assert 0.6 * truth < len(result.events_filtered) < 1.6 * truth

    def test_job_related_removal(self, result):
        assert len(result.events_final) == len(result.events_filtered) - len(
            result.job_related_redundant_ids
        )


class TestRecovery:
    """The pipeline must rediscover the hidden ground truth."""

    def test_interrupted_jobs_recovered(self, trace, result):
        truth = trace.ground_truth.interrupted_job_ids()
        found = set(int(j) for j in result.interruptions["job_id"])
        # recall and precision both reasonably high
        recall = len(truth & found) / len(truth)
        precision = len(truth & found) / len(found)
        assert recall > 0.8, f"recall {recall}"
        assert precision > 0.8, f"precision {precision}"

    def test_nonfatal_types_discovered(self, result):
        nonfatal = set(result.identification.nonfatal_types())
        assert nonfatal <= {"BULK_POWER_FATAL", "_bgp_err_torus_fatal_sum"}
        assert len(nonfatal) >= 1

    def test_undetermined_idle_types_are_ambient(self, result):
        from repro.faults.catalog import catalog_by_errcode, FaultClass

        idle = [
            e
            for e, b in result.identification.behaviors.items()
            if b is TypeBehavior.UNDETERMINED_IDLE
        ]
        ambient = [
            e
            for e in idle
            if catalog_by_errcode(e).fclass is FaultClass.AMBIENT_IDLE
        ]
        assert len(ambient) / len(idle) > 0.8

    def test_application_types_mostly_correct(self, result):
        from repro.faults.catalog import catalog_by_errcode, FaultClass

        app = result.classification.application_types()
        if app:
            good = [
                e
                for e in app
                if catalog_by_errcode(e).fclass is FaultClass.APPLICATION
            ]
            assert len(good) / len(app) >= 0.5

    def test_redundancy_detection_overlaps_truth(self, trace, result):
        # events flagged redundant should be a nontrivial set whenever
        # the ground truth contains redundancy
        if len(trace.ground_truth.redundant()) > 10:
            assert len(result.job_related_redundant_ids) > 0


class TestStudies:
    def test_weibull_preferred_for_failures(self, result):
        assert result.interarrivals.before.weibull_preferred
        assert result.interarrivals.before.weibull.shape < 1.0

    def test_categories_split(self, result):
        cats = result.interruptions_by_category()
        assert cats[1] > 0

    def test_profile_covers_all_midplanes(self, result):
        assert result.midplane_profile.num_rows == 80
        assert result.midplane_profile["workload"].sum() > 0

    def test_observations_present(self, result):
        assert len(result.observations) == 12
        assert result.observation(5).number == 5
        with pytest.raises(KeyError):
            result.observation(13)

    def test_most_observations_hold_at_this_scale(self, result):
        held = sum(1 for o in result.observations if o.holds)
        assert held >= 8

    def test_report_renders(self, result):
        text = result.report()
        assert "Table IV" in text
        assert "Figure 7" in text
        assert "Obs.12" in text.replace("Obs. 12", "Obs.12")

    def test_distinct_jobs_counted(self, result):
        assert 0 < result.num_interrupted_distinct_jobs() <= result.num_interrupted_jobs
