"""Unit tests for the fatal-event table."""

import numpy as np
import pytest

from repro.core.events import fatal_event_table
from tests.core.helpers import ras


@pytest.fixture
def table():
    return fatal_event_table(
        ras(
            [
                (1, "A", "FATAL", 100.0, "R00-M0-N01-J05"),
                (2, "B", "WARN", 150.0, "R00-M0"),
                (3, "A", "FATAL", 200.0, "R10"),
                (4, "C", "FATAL", 50.0, "R47-M1-S"),
            ]
        )
    )


class TestConstruction:
    def test_only_fatal_rows(self, table):
        assert len(table) == 3
        assert set(table.frame["errcode"]) == {"A", "C"}

    def test_sorted_by_time(self, table):
        times = list(table.frame["event_time"])
        assert times == sorted(times)

    def test_midplane_span_node_level(self, table):
        row = table.frame.filter(table.frame.mask_eq("event_time", 100.0)).row(0)
        assert row["mp_lo"] == row["mp_hi"] == 0

    def test_midplane_span_rack_level(self, table):
        row = table.frame.filter(table.frame.mask_eq("event_time", 200.0)).row(0)
        assert (row["mp_lo"], row["mp_hi"]) == (16, 17)

    def test_event_ids_unique(self, table):
        ids = table.frame["event_id"]
        assert len(set(ids)) == len(ids)


class TestOperations:
    def test_interarrival_times_positive(self, table):
        gaps = table.interarrival_times()
        assert list(gaps) == [50.0, 100.0]

    def test_interarrival_drops_zero_gaps(self):
        t = fatal_event_table(
            ras([(1, "A", "FATAL", 10.0, "R00-M0"), (2, "A", "FATAL", 10.0, "R00-M1"),
                 (3, "A", "FATAL", 30.0, "R00-M0")])
        )
        assert list(t.interarrival_times()) == [20.0]

    def test_drop_ids(self, table):
        eid = int(table.frame["event_id"][0])
        smaller = table.drop_ids({eid})
        assert len(smaller) == 2
        assert eid not in set(smaller.frame["event_id"])

    def test_select_ids(self, table):
        ids = table.frame["event_id"][:2]
        assert len(table.select_ids(ids)) == 2

    def test_midplane_counts_rack_event_counts_twice(self, table):
        counts = table.midplane_counts()
        assert counts[16] == 1 and counts[17] == 1
        assert counts[0] == 1
        assert counts[79] == 1
        assert counts.sum() == 4  # 3 events, one spans 2 midplanes
