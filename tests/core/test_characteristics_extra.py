"""Additional characteristics coverage: per-midplane fits."""

import numpy as np
import pytest

from repro.core.characteristics import midplane_interarrival_fits
from repro.core.events import fatal_event_table
from tests.core.helpers import ras


class TestMidplaneFits:
    def test_fits_only_where_data_suffices(self):
        rng = np.random.default_rng(2)
        rows = []
        rid = 0
        # 30 events on midplane 0, 2 events on midplane 10
        t = 0.0
        for _ in range(30):
            t += float(rng.exponential(5000.0))
            rows.append((rid, "A", "FATAL", t, "R00-M0"))
            rid += 1
        rows.append((rid, "A", "FATAL", 123.0, "R05-M0")); rid += 1
        rows.append((rid, "A", "FATAL", 456.0, "R05-M0"))
        fits = midplane_interarrival_fits(
            fatal_event_table(ras(rows)), min_events=8
        )
        assert 0 in fits
        assert 10 not in fits
        assert fits[0].weibull.shape > 0

    def test_rack_level_events_count_for_both_midplanes(self):
        rng = np.random.default_rng(3)
        rows = []
        t = 0.0
        for rid in range(20):
            t += float(rng.exponential(1000.0))
            rows.append((rid, "BULK", "FATAL", t, "R00"))
        fits = midplane_interarrival_fits(
            fatal_event_table(ras(rows)), min_events=8
        )
        assert 0 in fits and 1 in fits

    def test_empty(self):
        fits = midplane_interarrival_fits(fatal_event_table(ras([])))
        assert fits == {}
