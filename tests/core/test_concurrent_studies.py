"""Concurrent downstream studies equal the serial run, failures included."""

import pytest

from repro.core import CoAnalysis
from repro.simulate import CalibrationProfile, IntrepidSimulation


@pytest.fixture(scope="module")
def trace():
    return IntrepidSimulation(CalibrationProfile(seed=2011, scale=0.05)).run()


def _boom(*args, **kwargs):
    raise RuntimeError("synthetic study crash")


def fingerprint(result):
    """Everything observable about the studies, minus wall-clock."""
    return {
        "failures": [
            (f.stage, f.kind, f.error) for f in result.stage_failures
        ],
        "categories": result.interruptions_by_category(),
        "interarrivals": repr(result.interarrivals),
        "rates": repr(result.rates),
        "profile": None
        if result.midplane_profile is None
        else {
            c: result.midplane_profile[c].tolist()
            for c in result.midplane_profile.columns
        },
        "skew": repr(result.skew),
        "bursts": repr(result.bursts),
        "propagation": repr(result.propagation),
        "vulnerability": repr(result.vulnerability),
        "observations": [o.summary() for o in result.observations],
    }


class TestConcurrentEqualsSerial:
    def test_clean_run(self, trace):
        serial = CoAnalysis(study_workers=1).run(trace.ras_log, trace.job_log)
        threaded = CoAnalysis(study_workers=4).run(
            trace.ras_log, trace.job_log
        )
        assert fingerprint(serial) == fingerprint(threaded)

    def test_injected_failure_same_degradation(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.burst_study", _boom)
        serial = CoAnalysis(study_workers=1).run(trace.ras_log, trace.job_log)
        threaded = CoAnalysis(study_workers=4).run(
            trace.ras_log, trace.job_log
        )
        assert serial.degraded and threaded.degraded
        assert fingerprint(serial) == fingerprint(threaded)

    def test_failure_order_is_canonical(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.burst_study", _boom)
        monkeypatch.setattr("repro.core.pipeline.midplane_profile", _boom)
        monkeypatch.setattr("repro.core.pipeline.vulnerability_study", _boom)
        result = CoAnalysis(study_workers=4).run(
            trace.ras_log, trace.job_log
        )
        assert [f.stage for f in result.stage_failures] == [
            "studies.midplane_profile",
            "studies.skew",
            "studies.bursts",
            "studies.vulnerability",
        ]
        assert result.failure("studies.skew").kind == "Skipped"

    def test_dependent_stages_still_fed(self, trace):
        """rates (needs interarrivals' MTBF) and skew (needs the
        profile) compute real values in the concurrent schedule."""
        result = CoAnalysis(study_workers=4).run(
            trace.ras_log, trace.job_log
        )
        assert result.rates is not None
        assert result.skew is not None
        assert not result.degraded


class TestSchedulingModes:
    def test_fail_fast_stays_serial_and_raises(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.burst_study", _boom)
        with pytest.raises(RuntimeError, match="synthetic study crash"):
            CoAnalysis(error_boundaries=False, study_workers=4).run(
                trace.ras_log, trace.job_log
            )

    def test_per_study_timings_in_canonical_order(self, trace):
        for workers in (1, 4):
            result = CoAnalysis(study_workers=workers).run(
                trace.ras_log, trace.job_log
            )
            stages = [
                t.stage
                for t in result.timings
                if t.stage.startswith("studies.")
            ]
            assert stages == [
                "studies.interarrivals",
                "studies.rates",
                "studies.midplane_profile",
                "studies.skew",
                "studies.bursts",
                "studies.propagation",
                "studies.vulnerability",
            ]

    def test_workers_note_on_studies_stage(self, trace):
        threaded = CoAnalysis(study_workers=4).run(
            trace.ras_log, trace.job_log
        )
        note = next(
            t.note for t in threaded.timings if t.stage == "studies"
        )
        assert note == "4 workers"
        serial = CoAnalysis(study_workers=1).run(
            trace.ras_log, trace.job_log
        )
        note = next(
            t.note for t in serial.timings if t.stage == "studies"
        )
        assert note == ""
