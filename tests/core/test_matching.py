"""Unit tests for RAS-event / job-termination matching."""

import numpy as np
import pytest

from repro.core.events import fatal_event_table
from repro.core.matching import (
    CASE_IDLE,
    CASE_INTERRUPTS,
    CASE_RUNNING_UNHARMED,
    DEFAULT_TOLERANCE,
    INTERRUPTION_COLUMNS,
    INTERRUPTION_DTYPES,
    InterruptionMatcher,
)
from repro.machine.partition import parse_partition
from tests.core.helpers import jobs, ras


@pytest.fixture
def matcher():
    return InterruptionMatcher(tolerance=15.0)


def events(rows):
    return fatal_event_table(ras(rows))


class TestBasicMatching:
    def test_kill_matched(self, matcher):
        ev = events([(1, "A", "FATAL", 1000.0, "R00-M0-N02-J08")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        m = matcher.match(ev, jl)
        assert m.num_interrupted_jobs == 1
        assert m.interruptions.row(0)["job_id"] == 7
        assert m.event_cases[int(ev.frame["event_id"][0])] == CASE_INTERRUPTS

    def test_time_tolerance(self, matcher):
        ev = events([(1, "A", "FATAL", 1010.0, "R00-M0")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        assert matcher.match(ev, jl).num_interrupted_jobs == 1

    def test_outside_tolerance_not_matched(self, matcher):
        ev = events([(1, "A", "FATAL", 1100.0, "R00-M0")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        m = matcher.match(ev, jl)
        assert m.num_interrupted_jobs == 0

    def test_wrong_location_not_matched(self, matcher):
        ev = events([(1, "A", "FATAL", 1000.0, "R10-M0")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        m = matcher.match(ev, jl)
        assert m.num_interrupted_jobs == 0

    def test_partition_containment(self, matcher):
        """An event inside any midplane of the partition matches."""
        ev = events([(1, "A", "FATAL", 1000.0, "R11-M1-N00-J04")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R10-R11", 4)])
        assert matcher.match(ev, jl).num_interrupted_jobs == 1

    def test_rack_level_event_touches_partition(self, matcher):
        ev = events([(1, "BULK", "FATAL", 1000.0, "R00")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M1", 1)])
        assert matcher.match(ev, jl).num_interrupted_jobs == 1


class TestCases:
    def test_idle_case(self, matcher):
        ev = events([(1, "A", "FATAL", 5000.0, "R20-M0")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        m = matcher.match(ev, jl)
        assert m.event_cases[int(ev.frame["event_id"][0])] == CASE_IDLE

    def test_running_unharmed_case(self, matcher):
        ev = events([(1, "A", "FATAL", 700.0, "R00-M0")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        m = matcher.match(ev, jl)
        assert (
            m.event_cases[int(ev.frame["event_id"][0])] == CASE_RUNNING_UNHARMED
        )

    def test_type_case_table(self, matcher):
        ev = events(
            [
                (1, "A", "FATAL", 1000.0, "R00-M0"),   # kill
                (2, "A", "FATAL", 5000.0, "R20-M0"),   # idle
                (3, "B", "FATAL", 700.0, "R00-M0"),    # running, unharmed
            ]
        )
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        tc = matcher.match(ev, jl).type_cases
        rows = {r["errcode"]: r for r in tc.to_rows()}
        assert rows["A"]["case1"] == 1 and rows["A"]["case2"] == 1
        assert rows["B"]["case3"] == 1

    def test_case_share(self, matcher):
        ev = events(
            [
                (1, "A", "FATAL", 5000.0, "R20-M0"),
                (2, "A", "FATAL", 6000.0, "R21-M0"),
            ]
        )
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        m = matcher.match(ev, jl)
        assert m.case_share(CASE_IDLE) == 1.0


class TestMultiMatch:
    def test_one_job_keeps_earliest_event(self, matcher):
        ev = events(
            [
                (1, "A", "FATAL", 1000.0, "R00-M0"),
                (2, "B", "FATAL", 1005.0, "R00-M0"),
            ]
        )
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        m = matcher.match(ev, jl)
        assert m.pairs.num_rows == 2
        assert m.interruptions.num_rows == 1
        assert m.interruptions.row(0)["errcode"] == "A"

    def test_cross_partition_attribution_via_raw(self, matcher):
        """A shared-FS event kills two jobs in different partitions; the
        filtered representative sits in one, the raw stream shows the
        type at the other (§VI-C)."""
        filtered = events([(1, "CIOD", "FATAL", 1000.0, "R00-M0")])
        raw = events(
            [
                (1, "CIOD", "FATAL", 1000.0, "R00-M0"),
                (2, "CIOD", "FATAL", 1002.0, "R20-M1"),
            ]
        )
        jl = jobs(
            [
                (7, "/x", 500.0, 1000.0, "R00-M0", 1),
                (8, "/y", 400.0, 1001.0, "R20-M1", 1),
            ]
        )
        without = matcher.match(filtered, jl)
        assert without.num_interrupted_jobs == 1
        with_raw = matcher.match(filtered, jl, raw_events=raw)
        assert with_raw.num_interrupted_jobs == 2

    def test_raw_attribution_requires_type_co_location(self, matcher):
        filtered = events([(1, "CIOD", "FATAL", 1000.0, "R00-M0")])
        raw = filtered  # no CIOD record near the second job
        jl = jobs(
            [
                (7, "/x", 500.0, 1000.0, "R00-M0", 1),
                (8, "/y", 400.0, 1001.0, "R20-M1", 1),
            ]
        )
        m = matcher.match(filtered, jl, raw_events=raw)
        assert m.num_interrupted_jobs == 1

    def test_empty_inputs(self, matcher):
        m = matcher.match(events([]), jobs([(1, "/x", 0.0, 10.0, "R00-M0", 1)]))
        assert m.num_interrupted_jobs == 0
        assert m.pairs.num_rows == 0


class TestMatchedMidplane:
    """``mp`` must record the midplane that actually matched — the seed
    code unconditionally wrote the event's ``mp_lo``."""

    def test_rack_event_records_matched_midplane(self, matcher):
        # rack R00 spans midplanes 0-1; the job only holds midplane 1
        ev = events([(1, "BULK", "FATAL", 1000.0, "R00")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M1", 1)])
        m = matcher.match(ev, jl)
        assert m.pairs.row(0)["mp"] == 1

    def test_smallest_matching_midplane_wins(self, matcher):
        # the job holds the whole rack: both span midplanes match, keep 0
        ev = events([(1, "BULK", "FATAL", 1000.0, "R00")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00", 2)])
        m = matcher.match(ev, jl)
        assert m.pairs.row(0)["mp"] == 0

    def test_raw_credit_records_job_partition_midplane(self, matcher):
        filtered = events([(1, "CIOD", "FATAL", 1000.0, "R00-M0")])
        raw = events(
            [
                (1, "CIOD", "FATAL", 1000.0, "R00-M0"),
                (2, "CIOD", "FATAL", 1002.0, "R20-M1"),
            ]
        )
        jl = jobs(
            [
                (7, "/x", 500.0, 1000.0, "R00-M0", 1),
                (8, "/y", 400.0, 1001.0, "R20-M1", 1),
            ]
        )
        m = matcher.match(filtered, jl, raw_events=raw)
        by_job = {r["job_id"]: r for r in m.pairs.to_rows()}
        assert by_job[7]["mp"] == parse_partition("R00-M0").start
        assert by_job[8]["mp"] == parse_partition("R20-M1").start


class TestToleranceBoundary:
    """The window is inclusive on both edges: [t - tol, t + tol]."""

    def test_end_exactly_at_lower_edge_matches(self, matcher):
        ev = events([(1, "A", "FATAL", 1000.0, "R00-M0")])
        jl = jobs([(7, "/x", 500.0, 985.0, "R00-M0", 1)])
        assert matcher.match(ev, jl).num_interrupted_jobs == 1

    def test_end_exactly_at_upper_edge_matches(self, matcher):
        ev = events([(1, "A", "FATAL", 1000.0, "R00-M0")])
        jl = jobs([(7, "/x", 500.0, 1015.0, "R00-M0", 1)])
        assert matcher.match(ev, jl).num_interrupted_jobs == 1

    def test_end_just_outside_window_misses(self, matcher):
        ev = events([(1, "A", "FATAL", 1000.0, "R00-M0")])
        jl = jobs(
            [
                (7, "/x", 500.0, 984.999, "R00-M0", 1),
                (8, "/x", 500.0, 1015.001, "R00-M0", 1),
            ]
        )
        assert matcher.match(ev, jl).num_interrupted_jobs == 0

    def test_negative_tolerance_rejected(self):
        from repro.core import ReferenceInterruptionMatcher

        ev = events([(1, "A", "FATAL", 1000.0, "R00-M0")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        for cls in (InterruptionMatcher, ReferenceInterruptionMatcher):
            with pytest.raises(ValueError, match="non-negative"):
                cls(tolerance=-5.0).match(ev, jl)

    def test_default_tolerance_is_60s(self):
        matcher = InterruptionMatcher()
        assert matcher.tolerance == DEFAULT_TOLERANCE == 60.0
        ev = events([(1, "A", "FATAL", 1000.0, "R00-M0")])
        jl = jobs([(7, "/x", 500.0, 1060.0, "R00-M0", 1)])
        assert matcher.match(ev, jl).num_interrupted_jobs == 1


class TestEmptyJobLog:
    def test_all_events_idle_with_typed_empty_pairs(self, matcher):
        ev = events(
            [
                (1, "A", "FATAL", 1000.0, "R00-M0"),
                (2, "B", "FATAL", 2000.0, "R10"),
            ]
        )
        m = matcher.match(ev, jobs([]))
        assert m.pairs.num_rows == 0
        assert set(m.event_cases.values()) == {CASE_IDLE}
        # the empty pair frame keeps the full typed schema so downstream
        # numeric ops and concat keep working
        assert tuple(m.pairs.columns) == INTERRUPTION_COLUMNS
        for col in INTERRUPTION_COLUMNS:
            assert m.pairs[col].dtype == np.dtype(INTERRUPTION_DTYPES[col])

    def test_empty_jobs_and_raw_events(self, matcher):
        ev = events([(1, "A", "FATAL", 1000.0, "R00-M0")])
        m = matcher.match(ev, jobs([]), raw_events=ev)
        assert m.pairs.num_rows == 0
        assert m.interruptions.num_rows == 0


class TestTimings:
    def test_match_records_stage_timings(self, matcher):
        ev = events([(1, "A", "FATAL", 1000.0, "R00-M0")])
        jl = jobs([(7, "/x", 500.0, 1000.0, "R00-M0", 1)])
        m = matcher.match(ev, jl, raw_events=ev)
        stages = [t.stage for t in m.timings]
        assert stages == [
            "match.index",
            "match.join",
            "match.raw_credit",
            "match.cases",
            "match.assemble",
        ]
        assert all(t.wall_s >= 0.0 for t in m.timings)
