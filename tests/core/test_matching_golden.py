"""Golden equivalence: the vectorized matching kernel must reproduce
the row-at-a-time reference bit for bit.

The reference (:mod:`repro.core.matching_reference`) is an independent
restatement of the §IV join semantics; these tests drive both matchers
over randomized synthetic workloads and a simulated Intrepid trace and
demand identical pairs, case labels, and type-case tables.
"""

import numpy as np
import pytest

from benchmarks.bench_perf_filtering import make_match_workload
from repro.core import InterruptionMatcher, ReferenceInterruptionMatcher
from repro.core.events import fatal_event_table
from repro.core.filtering import FilterChain
from repro.simulate import CalibrationProfile, IntrepidSimulation


def assert_match_results_equal(ref, vec):
    """Bit-identical MatchResults (timings excepted)."""
    assert ref.pairs.num_rows == vec.pairs.num_rows
    assert list(ref.pairs.columns) == list(vec.pairs.columns)
    for col in ref.pairs.columns:
        a, b = ref.pairs[col], vec.pairs[col]
        assert a.dtype == b.dtype, col
        assert np.array_equal(a, b), col
    assert ref.event_cases == vec.event_cases
    for col in ref.type_cases.columns:
        assert np.array_equal(ref.type_cases[col], vec.type_cases[col]), col
    for col in ref.interruptions.columns:
        assert np.array_equal(
            ref.interruptions[col], vec.interruptions[col]
        ), col


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("with_raw", [False, True])
def test_golden_on_synthetic_workloads(seed, with_raw):
    ev, jl = make_match_workload(300, 800, seed=seed)
    raw = ev if with_raw else None
    ref = ReferenceInterruptionMatcher().match(ev, jl, raw_events=raw)
    vec = InterruptionMatcher().match(ev, jl, raw_events=raw)
    assert ref.pairs.num_rows > 0  # the workload must exercise the join
    assert_match_results_equal(ref, vec)


@pytest.mark.parametrize("tolerance", [15.0, 60.0, 300.0])
def test_golden_across_tolerances(tolerance):
    ev, jl = make_match_workload(200, 500, seed=11)
    ref = ReferenceInterruptionMatcher(tolerance=tolerance).match(
        ev, jl, raw_events=ev
    )
    vec = InterruptionMatcher(tolerance=tolerance).match(
        ev, jl, raw_events=ev
    )
    assert_match_results_equal(ref, vec)


def test_golden_on_simulated_trace():
    """The pipeline's own matcher inputs: post-filter events plus the
    post-temporal raw table from a simulated Intrepid trace."""
    trace = IntrepidSimulation(
        CalibrationProfile(seed=2011, scale=0.05)
    ).run()
    filters = FilterChain()
    events = filters.apply(fatal_event_table(trace.ras_log))
    ref = ReferenceInterruptionMatcher().match(
        events, trace.job_log, raw_events=filters.temporal_table
    )
    vec = InterruptionMatcher().match(
        events, trace.job_log, raw_events=filters.temporal_table
    )
    assert ref.pairs.num_rows > 0
    assert_match_results_equal(ref, vec)
