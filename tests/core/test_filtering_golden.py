"""Golden equivalence: the columnar filter kernels must reproduce the
row-at-a-time references bit for bit.

The references (:mod:`repro.core.filtering.reference`) are independent
statements of the chain-collapse and causality-mining semantics; these
tests drive both implementations over randomized synthetic streams
(several seeds × thresholds) and a simulated Intrepid trace, demanding
identical surviving frames, chain stats, and mined rules.
"""

import numpy as np
import pytest

from benchmarks.bench_perf_filtering import make_stream
from repro.core.events import fatal_event_table
from repro.core.filtering import (
    CausalityFilter,
    FilterChain,
    ReferenceCausalityFilter,
    ReferenceSpatialFilter,
    ReferenceTemporalFilter,
    SpatialFilter,
    TemporalFilter,
)
from repro.simulate import CalibrationProfile, IntrepidSimulation


def assert_tables_equal(ref, vec):
    """Bit-identical FatalEventTables: columns, dtypes, values."""
    assert list(ref.frame.columns) == list(vec.frame.columns)
    for col in ref.frame.columns:
        a, b = ref.frame[col], vec.frame[col]
        assert a.dtype == b.dtype, col
        assert np.array_equal(a, b), col


def reference_chain(temporal, spatial, window):
    return FilterChain(
        temporal=ReferenceTemporalFilter(threshold=temporal),
        spatial=ReferenceSpatialFilter(threshold=spatial),
        causal=ReferenceCausalityFilter(window=window),
    )


def vectorized_chain(temporal, spatial, window):
    return FilterChain(
        temporal=TemporalFilter(threshold=temporal),
        spatial=SpatialFilter(threshold=spatial),
        causal=CausalityFilter(window=window),
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("temporal,spatial,window", [
    (120.0, 120.0, 60.0),
    (300.0, 300.0, 120.0),
])
def test_golden_each_filter_on_synthetic_streams(seed, temporal, spatial, window):
    # few types/locations so chains, fan-out, and causal windows overlap
    events = make_stream(3000, n_types=8, n_locations=12, seed=seed)

    ref_t = ReferenceTemporalFilter(threshold=temporal).apply(events)
    vec_t = TemporalFilter(threshold=temporal).apply(events)
    assert 0 < len(vec_t) < len(events)  # the stream must exercise drops
    assert_tables_equal(ref_t, vec_t)

    ref_s = ReferenceSpatialFilter(threshold=spatial).apply(ref_t)
    vec_s = SpatialFilter(threshold=spatial).apply(vec_t)
    assert len(vec_s) < len(vec_t)
    assert_tables_equal(ref_s, vec_s)

    ref_c = ReferenceCausalityFilter(window=window)
    vec_c = CausalityFilter(window=window)
    assert_tables_equal(ref_c.apply(ref_s), vec_c.apply(vec_s))
    assert ref_c.rules == vec_c.rules


@pytest.mark.parametrize("seed", [3, 4, 5])
@pytest.mark.parametrize("temporal,spatial,window", [
    (60.0, 30.0, 240.0),
    (600.0, 300.0, 120.0),
])
def test_golden_chain_on_synthetic_streams(seed, temporal, spatial, window):
    events = make_stream(2500, n_types=6, n_locations=10, seed=seed)
    ref_chain = reference_chain(temporal, spatial, window)
    vec_chain = vectorized_chain(temporal, spatial, window)
    assert_tables_equal(ref_chain.apply(events), vec_chain.apply(events))
    assert ref_chain.stats == vec_chain.stats
    assert ref_chain.causal.rules == vec_chain.causal.rules
    assert_tables_equal(ref_chain.temporal_table, vec_chain.temporal_table)


def test_golden_causal_rules_mined_somewhere():
    """At least one synthetic configuration must mine non-trivial rules,
    or the rule-equality assertions above prove nothing."""
    rng_hit = False
    for seed in range(6):
        events = make_stream(3000, n_types=4, n_locations=6, seed=seed)
        f = CausalityFilter(window=600.0, min_support=3, min_confidence=0.2)
        f.apply(events)
        ref = ReferenceCausalityFilter(
            window=600.0, min_support=3, min_confidence=0.2
        )
        ref.apply(events)
        assert ref.rules == f.rules
        rng_hit = rng_hit or bool(f.rules)
    assert rng_hit


def test_golden_on_simulated_trace():
    """The pipeline's own filter inputs: the raw FATAL table of a
    simulated Intrepid trace."""
    trace = IntrepidSimulation(
        CalibrationProfile(seed=2011, scale=0.05)
    ).run()
    events = fatal_event_table(trace.ras_log)
    assert len(events) > 0
    ref_chain = reference_chain(300.0, 300.0, 120.0)
    vec_chain = FilterChain()
    assert_tables_equal(ref_chain.apply(events), vec_chain.apply(events))
    assert ref_chain.stats == vec_chain.stats
    assert ref_chain.causal.rules == vec_chain.causal.rules
    assert_tables_equal(ref_chain.temporal_table, vec_chain.temporal_table)
