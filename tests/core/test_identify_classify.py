"""Unit tests for §IV-A identification and §IV-B classification."""

import pytest

from repro.core.classify import (
    ClassificationRule,
    FailureClassifier,
    FailureOrigin,
)
from repro.core.events import fatal_event_table
from repro.core.identify import EventTypeIdentifier, TypeBehavior
from repro.core.jobindex import CompletedRunIndex
from repro.core.matching import InterruptionMatcher
from repro.frame import Frame
from tests.core.helpers import jobs, ras


def cases(rows):
    return Frame.from_rows(
        [
            {"errcode": e, "case1": c1, "case2": c2, "case3": c3}
            for e, c1, c2, c3 in rows
        ],
        columns=["errcode", "case1", "case2", "case3"],
    )


class TestIdentifier:
    def test_rules(self):
        result = EventTypeIdentifier().identify(
            cases(
                [
                    ("kills", 3, 1, 0),
                    ("kills_only_case1", 2, 0, 0),
                    ("alarm", 0, 2, 4),
                    ("idle_only", 0, 5, 0),
                    ("mixed", 1, 0, 1),
                ]
            )
        )
        b = result.behaviors
        assert b["kills"] is TypeBehavior.INTERRUPTION_RELATED
        assert b["kills_only_case1"] is TypeBehavior.INTERRUPTION_RELATED
        assert b["alarm"] is TypeBehavior.NONFATAL
        assert b["idle_only"] is TypeBehavior.UNDETERMINED_IDLE
        assert b["mixed"] is TypeBehavior.UNDETERMINED_MIXED

    def test_counts_and_lists(self):
        result = EventTypeIdentifier().identify(
            cases([("a", 1, 0, 0), ("b", 0, 1, 0), ("c", 0, 0, 1)])
        )
        assert result.count(TypeBehavior.INTERRUPTION_RELATED) == 1
        assert result.nonfatal_types() == ["c"]
        assert result.undetermined_types() == ["b"]

    def test_pessimistic_treatment(self):
        assert TypeBehavior.UNDETERMINED_IDLE.pessimistic_interruption_related()
        assert not TypeBehavior.NONFATAL.pessimistic_interruption_related()


def run_classifier(ev_rows, job_rows, tolerance=15.0):
    events = fatal_event_table(ras(ev_rows))
    job_log = jobs(job_rows)
    match = InterruptionMatcher(tolerance=tolerance).match(events, job_log)
    clean = CompletedRunIndex(
        job_log, set(int(j) for j in match.interrupted_job_ids())
    )
    return FailureClassifier().classify(
        events, match.pairs, match.type_cases, clean_runs=clean
    )


class TestClassifier:
    def test_idle_only_is_system(self):
        result = run_classifier(
            [(1, "SVC", "FATAL", 9999.0, "R30-M0-S")],
            [(1, "/x", 0.0, 100.0, "R00-M0", 1)],
        )
        assert result.origins["SVC"] is FailureOrigin.SYSTEM
        assert result.rules["SVC"] is ClassificationRule.IDLE_ONLY

    def test_sticky_location_is_system(self):
        """Different codes dying on the same midplane in a row: broken
        hardware (rule B / Figure-less §IV-B case)."""
        result = run_classifier(
            [
                (1, "DDR", "FATAL", 1000.0, "R00-M0"),
                (2, "DDR", "FATAL", 3000.0, "R00-M0"),
            ],
            [
                (1, "/x", 500.0, 1000.0, "R00-M0", 1),
                (2, "/y", 2500.0, 3000.0, "R00-M0", 1),
            ],
        )
        assert result.origins["DDR"] is FailureOrigin.SYSTEM
        assert result.rules["DDR"] is ClassificationRule.SAME_LOCATION_MULTI_JOB

    def test_figure2_pattern_is_application(self):
        """Fatal A follows the executable from midplane R00-M0 to
        R10-M0 while a different job completes cleanly on R00-M0 in
        between — the exact Figure 2 scenario."""
        result = run_classifier(
            [
                (1, "SEGV", "FATAL", 1000.0, "R00-M0"),
                (2, "SEGV", "FATAL", 5000.0, "R10-M0"),
            ],
            [
                (1, "/buggy", 500.0, 1000.0, "R00-M0", 1),
                (2, "/clean", 1500.0, 4000.0, "R00-M0", 1),  # unharmed
                (3, "/buggy", 4500.0, 5000.0, "R10-M0", 1),
            ],
        )
        assert result.origins["SEGV"] is FailureOrigin.APPLICATION
        assert (
            result.rules["SEGV"]
            is ClassificationRule.SAME_EXECUTABLE_MULTI_LOCATION
        )

    def test_figure2_needs_unharmed_run_at_old_location(self):
        """Without the clean run on the old midplane there is no
        application evidence; the lone-kill types fall back to
        correlation/system."""
        result = run_classifier(
            [
                (1, "SEGV", "FATAL", 1000.0, "R00-M0"),
                (2, "SEGV", "FATAL", 5000.0, "R10-M0"),
            ],
            [
                (1, "/buggy", 500.0, 1000.0, "R00-M0", 1),
                (3, "/buggy", 4500.0, 5000.0, "R10-M0", 1),
            ],
        )
        assert result.origins["SEGV"] is FailureOrigin.SYSTEM

    def test_nonfatal_pinned_system(self):
        events = fatal_event_table(
            ras([(1, "ALARM", "FATAL", 700.0, "R00-M0")])
        )
        job_log = jobs([(1, "/x", 500.0, 1000.0, "R00-M0", 1)])
        match = InterruptionMatcher().match(events, job_log)
        result = FailureClassifier().classify(
            events, match.pairs, match.type_cases, nonfatal_types={"ALARM"}
        )
        assert result.origins["ALARM"] is FailureOrigin.SYSTEM

    def test_correlation_fallback_inherits_label(self):
        """An unlabeled type co-occurring with a labeled system type in
        the same hourly bins inherits SYSTEM."""
        ev_rows = []
        rid = 0
        for k in range(8):
            t = k * 50000.0
            ev_rows.append((rid, "DDR", "FATAL", t, "R00-M0")); rid += 1
            ev_rows.append((rid, "DDR", "FATAL", t + 1800.0, "R00-M0")); rid += 1
            ev_rows.append((rid, "SHADOW", "FATAL", t + 600.0, "R30-M0")); rid += 1
        job_rows = []
        jid = 1
        for k in range(8):
            t = k * 50000.0
            job_rows.append((jid, f"/a{k}", t - 400.0, t, "R00-M0", 1)); jid += 1
            job_rows.append((jid, f"/b{k}", t + 1000.0, t + 1800.0, "R00-M0", 1)); jid += 1
            job_rows.append((jid, f"/c{k}", t + 100.0, t + 600.0, "R30-M0", 1)); jid += 1
        result = run_classifier(ev_rows, job_rows)
        assert result.origins["DDR"] is FailureOrigin.SYSTEM
        assert result.origins["SHADOW"] is FailureOrigin.SYSTEM
        assert result.rules["SHADOW"] in (
            ClassificationRule.CORRELATION,
            ClassificationRule.SAME_LOCATION_MULTI_JOB,
        )

    def test_origin_of_unknown_defaults_system(self):
        result = run_classifier(
            [(1, "X", "FATAL", 9999.0, "R30-M0")],
            [(1, "/x", 0.0, 100.0, "R00-M0", 1)],
        )
        assert result.origin_of("never_seen") is FailureOrigin.SYSTEM
