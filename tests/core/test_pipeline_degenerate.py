"""Robustness tests: the pipeline on degenerate and adversarial inputs."""

import pytest

from repro.core import CoAnalysis
from repro.logs.job import empty_job_log
from repro.logs.ras import empty_ras_log
from tests.core.helpers import jobs, ras


class TestDegenerateInputs:
    def test_both_logs_empty(self):
        result = CoAnalysis().run(empty_ras_log(), empty_job_log())
        assert result.num_jobs == 0
        assert len(result.events_final) == 0
        assert result.num_interrupted_jobs == 0
        assert len(result.observations) == 12
        assert "CO-ANALYSIS" in result.report()

    def test_jobs_without_ras(self):
        result = CoAnalysis().run(
            empty_ras_log(),
            jobs([(1, "/x", 0.0, 100.0, "R00-M0", 1)]),
        )
        assert result.num_jobs == 1
        assert result.num_interrupted_jobs == 0
        assert result.interarrivals.before is None

    def test_ras_without_jobs(self):
        result = CoAnalysis().run(
            ras(
                [
                    (1, "A", "FATAL", 50.0, "R00-M0"),
                    (2, "A", "FATAL", 5000.0, "R10-M0"),
                ]
            ),
            empty_job_log(),
        )
        assert len(result.events_filtered) == 2
        assert result.num_interrupted_jobs == 0
        # every event is an idle-location (case 2) event
        from repro.core.matching import CASE_IDLE

        assert result.match.case_share(CASE_IDLE) == 1.0

    def test_single_fatal_record(self):
        result = CoAnalysis().run(
            ras([(1, "A", "FATAL", 50.0, "R00-M0")]),
            jobs([(1, "/x", 0.0, 50.0, "R00-M0", 1)]),
        )
        assert result.num_interrupted_jobs == 1
        assert result.interarrivals.after is None  # one event, no gaps

    def test_nonfatal_only_ras(self):
        result = CoAnalysis().run(
            ras([(1, "ok", "INFO", 50.0, "R00-M0"),
                 (2, "warn", "WARN", 60.0, "R00-M0")]),
            jobs([(1, "/x", 0.0, 100.0, "R00-M0", 1)]),
        )
        assert len(result.events_filtered) == 0
        assert result.filter_stats.raw == 0

    def test_identical_timestamps(self):
        """Simultaneous fatal records must not break sorting/fitting."""
        rows = [(i, "A", "FATAL", 100.0, f"R0{i % 8}-M0") for i in range(10)]
        result = CoAnalysis().run(
            ras(rows), jobs([(1, "/x", 0.0, 100.0, "R00-M0", 1)])
        )
        assert result.filter_stats.raw == 10

    def test_observation_4_degrades_gracefully(self):
        result = CoAnalysis().run(empty_ras_log(), empty_job_log())
        obs4 = result.observation(4)
        assert not obs4.holds
        assert "note" in obs4.measured
