"""Rendering tests for the text report."""

import pytest

from repro.core import CoAnalysis
from repro.simulate import CalibrationProfile, IntrepidSimulation


@pytest.fixture(scope="module")
def result():
    trace = IntrepidSimulation(CalibrationProfile(seed=13, scale=0.05)).run()
    return CoAnalysis().run(trace.ras_log, trace.job_log)


class TestReportSections:
    @pytest.fixture(scope="class")
    def text(self, result):
        return result.report()

    @pytest.mark.parametrize(
        "needle",
        [
            "CO-ANALYSIS OF RAS LOG AND JOB LOG",
            "Filtering (SIV)",
            "Interruption-related fatal events (SIV-A)",
            "System failures vs application errors (SIV-B)",
            "Table IV",
            "Table V",
            "Table VI",
            "Figure 4a",
            "Figure 5",
            "Figure 7",
            "The twelve observations",
        ],
    )
    def test_sections_present(self, text, needle):
        assert needle in text

    def test_all_observations_rendered(self, text):
        for i in range(1, 13):
            assert f"Obs.{i:>2}" in text

    def test_counts_consistent_with_result(self, result, text):
        assert f"raw FATAL records:        {result.filter_stats.raw}" in text
        assert str(result.num_jobs) in text

    def test_table6_has_all_size_rows(self, text):
        for size in (1, 2, 4, 8, 16, 32, 48, 64, 80):
            assert f"\n{size:>10} |" in text

    def test_midplane_blocks_cover_machine(self, text):
        assert "mp  0- 7:" in text
        assert "mp 72-79:" in text

    def test_verdict_line(self, text):
        assert "/12 observations hold" in text


class TestObservationSummaries:
    def test_summary_format(self, result):
        obs = result.observation(1)
        s = obs.summary()
        assert s.startswith("Obs. 1 [")
        assert "HOLDS" in s or "DIVERGES" in s

    def test_measured_values_render(self, result):
        obs = result.observation(7)
        assert "mtti_over_mtbf" in obs.summary()
