"""Graceful pipeline degradation: stage error boundaries and reporting."""

import pytest

from repro.core import CoAnalysis
from repro.core.pipeline import StageFailure
from repro.simulate import CalibrationProfile, IntrepidSimulation


@pytest.fixture(scope="module")
def trace():
    return IntrepidSimulation(CalibrationProfile(seed=2011, scale=0.05)).run()


def _boom(*args, **kwargs):
    raise RuntimeError("synthetic study crash")


class TestErrorBoundaries:
    def test_failing_study_captured_not_fatal(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.burst_study", _boom)
        result = CoAnalysis().run(trace.ras_log, trace.job_log)
        assert result.degraded
        assert result.bursts is None
        failure = result.failure("studies.bursts")
        assert failure is not None
        assert failure.kind == "RuntimeError"
        assert "synthetic study crash" in failure.error

    def test_unrelated_studies_still_computed(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.burst_study", _boom)
        result = CoAnalysis().run(trace.ras_log, trace.job_log)
        assert result.interarrivals is not None
        assert result.rates is not None
        assert result.vulnerability is not None
        assert [f.stage for f in result.stage_failures] == ["studies.bursts"]

    def test_dependent_stage_cascades_as_skipped(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.midplane_profile", _boom)
        result = CoAnalysis().run(trace.ras_log, trace.job_log)
        assert result.midplane_profile is None
        assert result.skew is None
        skew_failure = result.failure("studies.skew")
        assert skew_failure.kind == "Skipped"
        assert "studies.midplane_profile" in skew_failure.error

    def test_observations_skip_on_degraded_inputs(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.burst_study", _boom)
        result = CoAnalysis().run(trace.ras_log, trace.job_log)
        assert len(result.observations) == 12
        obs6 = result.observation(6)
        assert not obs6.available
        assert "studies.bursts" in obs6.measured["note"]
        assert "[SKIPPED]" in obs6.summary()
        # every other observation still computed normally
        assert all(
            o.available for o in result.observations if o.number != 6
        )

    def test_observations_degrade_to_empty_list(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.compute_observations", _boom)
        result = CoAnalysis().run(trace.ras_log, trace.job_log)
        assert result.observations == []
        assert result.failure("observations") is not None

    def test_boundaries_off_restores_fail_fast(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.burst_study", _boom)
        with pytest.raises(RuntimeError, match="synthetic study crash"):
            CoAnalysis(error_boundaries=False).run(
                trace.ras_log, trace.job_log
            )

    def test_clean_run_is_not_degraded(self, trace):
        result = CoAnalysis().run(trace.ras_log, trace.job_log)
        assert not result.degraded
        assert result.stage_failures == ()
        assert result.failure("studies.bursts") is None


class TestDegradedReport:
    @pytest.fixture()
    def degraded(self, trace, monkeypatch):
        monkeypatch.setattr("repro.core.pipeline.burst_study", _boom)
        monkeypatch.setattr("repro.core.pipeline.midplane_profile", _boom)
        return CoAnalysis().run(trace.ras_log, trace.job_log)

    def test_sections_render_degraded_stub(self, degraded):
        text = degraded.report()
        assert "Figure 5: interruptions per day" in text
        assert "DEGRADED: studies.bursts: RuntimeError" in text
        assert "DEGRADED: studies.midplane_profile" in text

    def test_degradation_summary_lists_all(self, degraded):
        text = degraded.report()
        assert "Degraded stages" in text
        assert "3 stage(s) degraded" in text  # bursts, profile, skew
        for f in degraded.stage_failures:
            assert f.describe() in text

    def test_healthy_sections_unaffected(self, degraded):
        text = degraded.report()
        assert "Table IV" in text
        assert "Table V" in text
        assert "observations hold" in text

    def test_clean_report_has_no_degradation_section(self, trace):
        text = CoAnalysis().run(trace.ras_log, trace.job_log).report()
        assert "Degraded stages" not in text
        assert "DEGRADED" not in text


class TestStageFailure:
    def test_describe(self):
        f = StageFailure("studies.rates", "ValueError", "no data")
        assert f.describe() == "studies.rates: ValueError: no data"
