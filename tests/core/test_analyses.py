"""Unit tests for bursts, propagation, rates, and characteristics."""

import numpy as np
import pytest

from repro.core.bursts import burst_study
from repro.core.characteristics import (
    interarrival_study,
    midplane_profile,
    midplane_skew,
)
from repro.core.events import fatal_event_table
from repro.core.propagation import propagation_study
from repro.core.rates import (
    category_interarrivals,
    interruption_cdfs,
    interruption_rate_study,
)
from repro.frame import Frame
from tests.core.helpers import jobs, ras


def cat_interruptions(rows):
    """(job_id, t, errcode, executable, mp, category[, start, end]) rows."""
    return Frame.from_rows(
        [
            {
                "event_id": i,
                "job_id": r[0],
                "event_time": float(r[1]),
                "errcode": r[2],
                "executable": r[3],
                "mp": r[4],
                "category": r[5],
                "job_start": float(r[6]) if len(r) > 6 else float(r[1]) - 100.0,
                "job_end": float(r[7]) if len(r) > 7 else float(r[1]),
                "user": "u1",
                "project": "p1",
                "size_midplanes": 1,
                "job_location": "R00-M0",
            }
            for i, r in enumerate(rows)
        ],
        columns=[
            "event_id", "job_id", "event_time", "errcode", "executable",
            "mp", "category", "job_start", "job_end", "user", "project",
            "size_midplanes", "job_location",
        ],
    )


class TestBursts:
    def test_per_day_series(self):
        ints = cat_interruptions(
            [(1, 100.0, "A", "/x", 0, 1), (2, 200.0, "A", "/x", 0, 1),
             (3, 2 * 86400.0 + 10, "A", "/y", 0, 1)]
        )
        study = burst_study(ints, t_start=0.0, duration=3 * 86400.0)
        assert list(study.per_day) == [2, 0, 1]
        assert study.days_with_interruptions == 2
        assert study.max_per_day == 2

    def test_quick_successions(self):
        ints = cat_interruptions(
            [(1, 0.0, "A", "/x", 0, 1), (2, 500.0, "A", "/x", 0, 1),
             (3, 50000.0, "A", "/y", 0, 1)]
        )
        study = burst_study(ints, 0.0, 86400.0 * 2, quick_window=1000.0)
        assert study.quick_successions == 1

    def test_chains(self):
        ints = cat_interruptions(
            [(i, i * 1000.0, "A", "/x", 3, 1) for i in range(4)]
        )
        study = burst_study(ints, 0.0, 86400.0)
        assert study.max_chain_per_executable == 4
        assert study.max_jobs_per_location_chain == 4

    def test_burstiness_above_one_for_clustered(self):
        times = [float(t) for t in [0, 1, 2, 3, 4]] + [86400.0 * 30 + t for t in range(5)]
        ints = cat_interruptions(
            [(i, t, "A", "/x", 0, 1) for i, t in enumerate(times)]
        )
        study = burst_study(ints, 0.0, 86400.0 * 60)
        assert study.burstiness > 1.0

    def test_empty(self):
        study = burst_study(cat_interruptions([]), 0.0, 86400.0)
        assert study.per_day.sum() == 0
        assert study.burstiness == 0.0


class TestPropagation:
    def test_multi_job_multi_location_detected(self):
        pairs = Frame.from_rows(
            [
                {"event_id": 1, "job_id": 10, "errcode": "CIOD",
                 "job_location": "R00-M0"},
                {"event_id": 1, "job_id": 11, "errcode": "CIOD",
                 "job_location": "R20-M0"},
                {"event_id": 2, "job_id": 12, "errcode": "DDR",
                 "job_location": "R10-M0"},
            ]
        )
        study = propagation_study(pairs, total_events=50)
        assert study.propagating_events == 1
        assert study.propagating_types == ("CIOD",)
        assert study.share_of_fatal_events == pytest.approx(0.02)

    def test_multi_job_same_location_not_propagation(self):
        pairs = Frame.from_rows(
            [
                {"event_id": 1, "job_id": 10, "errcode": "DDR",
                 "job_location": "R00-M0"},
                {"event_id": 1, "job_id": 11, "errcode": "DDR",
                 "job_location": "R00-M0"},
            ]
        )
        study = propagation_study(pairs, total_events=10)
        assert study.propagating_events == 0

    def test_empty(self):
        study = propagation_study(
            Frame.from_rows([], columns=["event_id", "job_id", "errcode",
                                         "job_location"]),
            total_events=0,
        )
        assert study.share_of_fatal_events == 0.0


class TestRates:
    def _interruptions(self, rng):
        rows = []
        t = 0.0
        for i in range(120):
            t += float(rng.exponential(50000.0))
            rows.append((i, t, "DDR", f"/s{i}", 0, 1))
        t = 0.0
        for i in range(80):
            t += float(rng.exponential(120000.0))
            rows.append((1000 + i, t, "SEGV", f"/a{i}", 0, 2))
        return cat_interruptions(rows)

    def test_category_split(self):
        rng = np.random.default_rng(1)
        ints = self._interruptions(rng)
        sys_gaps = category_interarrivals(ints, 1)
        app_gaps = category_interarrivals(ints, 2)
        assert len(sys_gaps) == 119
        assert len(app_gaps) == 79

    def test_study_fits_both(self):
        rng = np.random.default_rng(2)
        study = interruption_rate_study(self._interruptions(rng), mtbf=30000.0)
        assert study.system is not None
        assert study.application is not None
        assert study.mtti_application > study.mtti_system
        assert study.mtti_over_mtbf > 1.0

    def test_insufficient_data_gives_none(self):
        ints = cat_interruptions([(1, 100.0, "A", "/x", 0, 1)])
        study = interruption_rate_study(ints, mtbf=100.0)
        assert study.system is None
        assert np.isnan(study.mtti_over_mtbf)

    def test_cdfs(self):
        rng = np.random.default_rng(3)
        cdfs = interruption_cdfs(self._interruptions(rng))
        assert set(cdfs) == {1, 2}
        assert cdfs[1].n == 119


class TestCharacteristics:
    def test_interarrival_study_detects_filtering_effect(self):
        rng = np.random.default_rng(4)
        # bulk events + a tight redundant cluster
        bulk = np.cumsum(rng.exponential(40000.0, 150))
        cluster = bulk[10] + np.arange(1, 21) * 400.0
        rows_before = [
            (i, "A", "FATAL", float(t), "R00-M0")
            for i, t in enumerate(np.sort(np.concatenate([bulk, cluster])))
        ]
        rows_after = [
            (i, "A", "FATAL", float(t), "R00-M0")
            for i, t in enumerate(np.sort(bulk))
        ]
        study = interarrival_study(
            fatal_event_table(ras(rows_before)),
            fatal_event_table(ras(rows_after)),
        )
        assert study.after.weibull.shape > study.before.weibull.shape
        assert study.mtbf_ratio > 1.0

    def test_midplane_profile_workload(self):
        ev = fatal_event_table(ras([(1, "A", "FATAL", 100.0, "R00-M0")]))
        jl = jobs(
            [
                (1, "/x", 0.0, 1000.0, "R00-M0", 1),
                (2, "/y", 0.0, 500.0, "R10-R17", 32),  # wide: 16 racks
            ]
        )
        profile = midplane_profile(ev, jl, wide_threshold=32)
        assert profile["fatal_events"][0] == 1
        assert profile["workload"][0] == 1000.0
        assert profile["workload"][16] == 500.0
        assert profile["wide_workload"][16] == 500.0
        assert profile["wide_workload"][0] == 0.0

    def test_skew_summary(self):
        ev = fatal_event_table(
            ras([(i, "A", "FATAL", 1000.0 * i, "R20-M0") for i in range(5)])
        )
        jl = jobs([(1, "/w", 0.0, 1000.0, "R20-R27", 32)])
        profile = midplane_profile(ev, jl)
        skew = midplane_skew(profile)
        assert skew.wide_region_event_share == 1.0
        assert 32 in skew.top_failure_midplanes
