"""Map-reduce fleet analysis: shard-count equivalence, deterministic
reduce, per-machine degradation.

The central claim: because scans reassemble bit-identically, the number
of windows a trace was partitioned into can never change an analysis
result — observations, Weibull fits and merged bootstrap CIs are the
same bits at K=1, 2 and 7 as the batch pipeline run on the original
in-memory logs.
"""

import struct

import numpy as np
import pytest

from repro.core.pipeline import CoAnalysis
from repro.obs.metrics import get_metrics
from repro.simulate.calibration import CalibrationProfile
from repro.simulate.fleet import store_fleet, synthesize_fleet
from repro.store import ShardedDataset, analyze_fleet

WINDOW_COUNTS = [1, 2, 7]


def _bits(value):
    """Normalize one measured value for exact comparison (NaN-safe)."""
    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


def obs_key(observations):
    """Machine-level observations as an exactly comparable value."""
    return tuple(
        (
            o.number,
            o.holds,
            o.available,
            tuple(sorted((k, _bits(v)) for k, v in o.measured.items())),
        )
        for o in observations
    )


def fleet_obs_key(observations):
    """Merged fleet observations (with CIs) as a comparable value."""
    return tuple(
        (
            o.number,
            o.holds_count,
            o.available_count,
            o.total,
            tuple(
                sorted(
                    (k, _bits(ci.estimate), _bits(ci.low), _bits(ci.high))
                    for k, ci in o.measured.items()
                )
            ),
        )
        for o in observations
    )


@pytest.fixture(scope="module")
def fleet():
    return synthesize_fleet(CalibrationProfile(seed=17, scale=0.02), 2)


@pytest.fixture(scope="module")
def stores(fleet, tmp_path_factory):
    """The first machine's trace partitioned at each window count."""
    tmp = tmp_path_factory.mktemp("kstores")
    out = {}
    for windows in WINDOW_COUNTS:
        ds = ShardedDataset.create(tmp / f"k{windows}")
        ds.add_machine_trace(
            fleet[0].machine,
            fleet[0].ras_log,
            fleet[0].job_log,
            windows=windows,
        )
        out[windows] = ds
    return out


@pytest.fixture(scope="module")
def batch_result(fleet):
    return CoAnalysis().run(
        fleet[0].ras_log, fleet[0].job_log, source=fleet[0].machine
    )


@pytest.fixture(scope="module")
def fleet_results(stores):
    return {
        windows: analyze_fleet(stores[windows], workers=1, seed=2011)
        for windows in WINDOW_COUNTS
    }


class TestShardCountEquivalence:
    @pytest.mark.parametrize("windows", WINDOW_COUNTS)
    def test_observations_match_batch(
        self, fleet_results, batch_result, windows
    ):
        (machine,) = fleet_results[windows].machines
        assert machine.ok, machine.error
        assert obs_key(machine.result.observations) == obs_key(
            batch_result.observations
        )

    @pytest.mark.parametrize("windows", WINDOW_COUNTS)
    def test_weibull_fits_match_batch(
        self, fleet_results, batch_result, windows
    ):
        got = fleet_results[windows].machines[0].result.interarrivals
        want = batch_result.interarrivals
        assert (got is None) == (want is None)
        if want is None:
            pytest.skip("trace too sparse for an interarrival fit")
        for side in ("before", "after"):
            g, w = getattr(got, side), getattr(want, side)
            assert (g is None) == (w is None)
            if w is not None:
                assert _bits(g.weibull.shape) == _bits(w.weibull.shape)
                assert _bits(g.weibull.scale) == _bits(w.weibull.scale)
                assert _bits(g.weibull.log_likelihood) == _bits(
                    w.weibull.log_likelihood
                )

    def test_merged_cis_identical_across_window_counts(self, fleet_results):
        keys = {
            windows: fleet_obs_key(fleet_results[windows].observations)
            for windows in WINDOW_COUNTS
        }
        assert keys[1] == keys[2] == keys[7]

    def test_single_machine_estimate_is_the_batch_value(
        self, fleet_results, batch_result
    ):
        batch = {o.number: o for o in batch_result.observations}
        for fo in fleet_results[1].observations:
            for key, ci in fo.measured.items():
                assert _bits(ci.estimate) == _bits(
                    float(batch[fo.number].measured[key])
                )


class TestFleetDriver:
    @pytest.fixture(scope="class")
    def dataset(self, fleet, tmp_path_factory):
        return store_fleet(
            tmp_path_factory.mktemp("fleet") / "store", fleet, windows=3
        )

    def test_worker_counts_agree(self, dataset):
        serial = analyze_fleet(dataset, workers=1, seed=7)
        threaded = analyze_fleet(dataset, workers=2, seed=7)
        assert [m.machine for m in serial.machines] == [
            m.machine for m in threaded.machines
        ]
        assert fleet_obs_key(serial.observations) == fleet_obs_key(
            threaded.observations
        )

    def test_reduce_is_seed_deterministic(self, dataset):
        a = analyze_fleet(dataset, workers=1, seed=42)
        b = analyze_fleet(dataset, workers=1, seed=42)
        assert fleet_obs_key(a.observations) == fleet_obs_key(b.observations)

    def test_summary_frame_keeps_int_counts(self, dataset):
        result = analyze_fleet(dataset, workers=1)
        summary = result.summary_frame()
        assert summary.num_rows == 2
        for col in ("jobs", "interrupted_jobs", "events_filtered",
                    "events_final", "holds"):
            assert summary[col].dtype == np.int64, col
        assert summary["machine"].dtype == object
        assert summary["mtbf_h"].dtype == np.float64

    def test_one_bad_machine_degrades_not_dies(self, dataset, fleet):
        bad = fleet[1].machine

        class SelectiveBoom:
            def run(self, ras, job, source=""):
                if source == bad:
                    raise RuntimeError("injected map failure")
                return CoAnalysis().run(ras, job, source=source)

        get_metrics().reset()
        result = analyze_fleet(
            dataset, workers=1, pipeline_factory=SelectiveBoom
        )
        assert result.degraded
        failed = next(m for m in result.machines if not m.ok)
        assert failed.machine == bad
        assert "injected map failure" in failed.error
        assert get_metrics().value("fleet.machines", status="ok") == 1
        assert get_metrics().value("fleet.machines", status="failed") == 1
        # the healthy machine still produces merged observations
        assert result.observations
        assert all(o.available_count <= 1 for o in result.observations)
        assert result.summary_frame().num_rows == 1
        # and the report renders the degradation instead of raising
        assert "DEGRADED" in result.report()

    def test_all_failed_fleet_yields_typed_empty_summary(self, dataset):
        class AlwaysBoom:
            def run(self, ras, job, source=""):
                raise RuntimeError("boom")

        result = analyze_fleet(
            dataset, workers=1, pipeline_factory=AlwaysBoom
        )
        assert result.degraded and not result.ok_machines
        assert result.observations == []
        summary = result.summary_frame()
        assert summary.num_rows == 0
        assert summary["jobs"].dtype == np.int64
        assert summary["machine"].dtype == object

    def test_no_machines_rejected(self, tmp_path):
        ds = ShardedDataset.create(tmp_path / "empty")
        with pytest.raises(ValueError, match="no machines"):
            analyze_fleet(ds)

    def test_machine_subset(self, dataset, fleet):
        only = fleet[0].machine
        result = analyze_fleet(dataset, machines=[only], workers=1)
        assert [m.machine for m in result.machines] == [only]
