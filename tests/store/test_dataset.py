"""Sharded store correctness: roundtrips, pruning (proven via
metrics, not trusted), manifest integrity and failure modes."""

import json

import numpy as np
import pytest

from repro.obs.metrics import get_metrics
from repro.simulate.fleet import store_fleet, synthesize_fleet
from repro.simulate.calibration import CalibrationProfile
from repro.store import (
    STORE_SCHEMA_VERSION,
    ShardedDataset,
    StoreManifest,
    partition_edges,
)
from repro.store.manifest import MANIFEST_NAME, StoreError


@pytest.fixture(scope="module")
def machine():
    """One small synthesized machine trace (module-scoped: simulation
    dominates this file's runtime)."""
    return synthesize_fleet(CalibrationProfile(seed=5, scale=0.02), 1)[0]


def metric(name, **labels):
    """Counter value, 0 when never incremented."""
    return get_metrics().value(name, **labels) or 0


def make_store(tmp_path, machine, windows):
    ds = ShardedDataset.create(tmp_path / f"store_k{windows}")
    ds.add_machine_trace(
        machine.machine, machine.ras_log, machine.job_log, windows=windows
    )
    return ds


def assert_frames_identical(a, b):
    assert a.columns == b.columns
    for col in a.columns:
        assert a[col].dtype == b[col].dtype, col
        assert np.array_equal(a[col], b[col]), col


class TestRoundtrip:
    @pytest.mark.parametrize("windows", [1, 2, 7])
    def test_scan_is_bit_identical_inverse(self, tmp_path, machine, windows):
        ds = make_store(tmp_path, machine, windows)
        assert_frames_identical(
            ds.load_ras(machine.machine).frame, machine.ras_log.frame
        )
        assert_frames_identical(
            ds.load_job(machine.machine).frame, machine.job_log.frame
        )

    @pytest.mark.parametrize("mmap", [True, False])
    def test_mmap_and_memory_agree(self, tmp_path, machine, mmap):
        ds = make_store(tmp_path, machine, 3)
        assert_frames_identical(
            ds.scan(machine.machine, "ras", mmap=mmap),
            machine.ras_log.frame,
        )

    def test_reopen_and_scan(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 4)
        reopened = ShardedDataset.open(ds.root)
        assert reopened.machines() == [machine.machine]
        assert_frames_identical(
            reopened.load_ras(machine.machine).frame, machine.ras_log.frame
        )

    def test_validate_clean_store(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 2)
        assert ds.validate(verify_hashes=True) == []

    def test_time_range_scan_equals_batch_filter(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 6)
        t = machine.ras_log.frame["event_time"]
        q0 = float(np.quantile(t, 0.3))
        q1 = float(np.quantile(t, 0.6))
        got = ds.scan(machine.machine, "ras", time_range=(q0, q1))
        want = machine.ras_log.frame.filter((t >= q0) & (t < q1))
        assert_frames_identical(got, want)


class TestPruning:
    WINDOWS = 10

    def _edges(self, machine):
        spans = np.concatenate(
            [
                machine.ras_log.frame["event_time"],
                machine.job_log.frame["start_time"],
            ]
        )
        return partition_edges(
            float(spans.min()), float(spans.max()), self.WINDOWS
        )

    def test_out_of_range_shards_never_opened(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, self.WINDOWS)
        edges = self._edges(machine)
        get_metrics().reset()
        ds.scan(
            machine.machine, "ras", time_range=(edges[4], edges[5])
        )
        assert metric("store.scan.shards", table="ras", status="opened") == 1
        assert metric("store.scan.shards", table="ras", status="pruned") == 9
        # the spy that proves it: pruned shards cause zero column loads
        loads = metric("store.shard.column_loads", mode="mmap") + metric(
            "store.shard.column_loads", mode="memory"
        )
        spec = ds.manifest.select(machine.machine, "ras")[0].columns
        assert loads == len(spec)

    def test_all_pruned_scan_touches_no_disk(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, self.WINDOWS)
        t1 = float(machine.ras_log.frame["event_time"].max())
        get_metrics().reset()
        out = ds.scan(
            machine.machine, "ras", time_range=(t1 + 1e6, t1 + 2e6)
        )
        assert out.num_rows == 0
        assert metric("store.scan.shards", table="ras", status="pruned") == 10
        assert metric("store.shard.column_loads", mode="mmap") == 0
        assert metric("store.shard.column_loads", mode="memory") == 0
        # typed empty: dtypes come from the manifest spec, not the disk
        batch = machine.ras_log.frame
        for col in batch.columns:
            assert out[col].dtype == batch[col].dtype, col

    def test_pruned_range_rows_match_batch(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, self.WINDOWS)
        edges = self._edges(machine)
        q = (float(edges[2]), float(edges[7]))
        got = ds.scan(machine.machine, "job", time_range=q)
        t = machine.job_log.frame["start_time"]
        want = machine.job_log.frame.filter((t >= q[0]) & (t < q[1]))
        assert_frames_identical(got, want)


class TestFailureModes:
    def test_open_missing_store_raises(self, tmp_path):
        with pytest.raises(StoreError, match="manifest"):
            ShardedDataset.open(tmp_path / "nowhere")

    def test_version_drift_raises(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 1)
        manifest_path = ds.root / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        payload["version"] = STORE_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="version"):
            ShardedDataset.open(ds.root)

    def test_duplicate_machine_rejected(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 1)
        with pytest.raises(StoreError, match="already"):
            ds.add_machine_trace(
                machine.machine, machine.ras_log, machine.job_log
            )

    def test_scan_unknown_machine_raises(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 1)
        with pytest.raises(StoreError, match="no 'ras' shards"):
            ds.scan("not-a-machine", "ras")

    def test_scan_unknown_table_raises(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 1)
        with pytest.raises(ValueError, match="unknown table"):
            ds.scan(machine.machine, "events")

    def test_validate_flags_missing_column_file(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 2)
        victim = next(
            f for f in ds.root.rglob("*.npy") if f.is_file()
        )
        victim.unlink()
        problems = ds.validate()
        assert any(victim.name in p for p in problems)

    def test_validate_flags_hash_mismatch(self, tmp_path, machine):
        ds = make_store(tmp_path, machine, 1)
        victim = next(iter(sorted(ds.root.rglob("*.codes.npy"))))
        codes = np.load(victim)
        codes[0] = codes[0] ^ 1
        np.save(victim, codes)
        assert ds.validate(verify_hashes=False) == []
        problems = ds.validate(verify_hashes=True)
        assert any("hash" in p for p in problems)


class TestPartitionEdges:
    def test_edges_cover_span(self):
        e = partition_edges(0.0, 100.0, 4)
        assert list(e) == [0.0, 25.0, 50.0, 75.0, 100.0]

    def test_zero_windows_rejected(self):
        with pytest.raises(ValueError, match="window"):
            partition_edges(0.0, 1.0, 0)

    def test_inverted_span_rejected(self):
        with pytest.raises(ValueError, match="span"):
            partition_edges(5.0, 1.0, 3)

    def test_empty_manifest_has_no_machines(self, tmp_path):
        ds = ShardedDataset.create(tmp_path / "empty")
        assert ds.machines() == []
        assert isinstance(ds.manifest, StoreManifest)


class TestAppendWindow:
    """Incremental appends: one new window per table, existing shards
    never rewritten, time order enforced against the stored envelope."""

    def _split(self, machine, frac=0.8):
        t = machine.ras_log.frame["event_time"]
        s = machine.job_log.frame["start_time"]
        lo = min(float(t.min()), float(s.min()))
        hi = max(float(t.max()), float(s.max()))
        cut = lo + frac * (hi - lo)
        past = np.nextafter(hi, np.inf)
        return (
            (machine.ras_log.select_time(lo, cut),
             machine.job_log.select_time(lo, cut)),
            (machine.ras_log.select_time(cut, past),
             machine.job_log.select_time(cut, past)),
        )

    def test_append_then_scan_equals_full_trace(self, tmp_path, machine):
        (ras0, job0), (ras1, job1) = self._split(machine)
        ds = ShardedDataset.create(tmp_path / "store")
        ds.add_machine_trace(machine.machine, ras0, job0, windows=2)
        ds.append_machine_window(machine.machine, ras1, job1)
        reopened = ShardedDataset.open(tmp_path / "store")
        assert_frames_identical(
            reopened.load_ras(machine.machine).frame, machine.ras_log.frame
        )
        assert_frames_identical(
            reopened.load_job(machine.machine).frame, machine.job_log.frame
        )

    def test_existing_shards_untouched(self, tmp_path, machine):
        (ras0, job0), (ras1, job1) = self._split(machine)
        ds = ShardedDataset.create(tmp_path / "store")
        ds.add_machine_trace(machine.machine, ras0, job0, windows=2)
        before = {
            p: p.read_bytes()
            for p in sorted((tmp_path / "store").rglob("*"))
            if p.is_file() and p.name != MANIFEST_NAME
        }
        new = ds.append_machine_window(machine.machine, ras1, job1)
        assert {s.table for s in new} == {"ras", "job"}
        assert all(s.window == 2 for s in new)
        for path, content in before.items():
            assert path.read_bytes() == content, f"{path} was rewritten"

    def test_out_of_order_append_rejected(self, tmp_path, machine):
        (ras0, job0), (ras1, job1) = self._split(machine)
        ds = ShardedDataset.create(tmp_path / "store")
        ds.add_machine_trace(machine.machine, ras0, job0, windows=1)
        with pytest.raises(StoreError, match="out of order"):
            ds.append_machine_window(machine.machine, ras0, job0)

    def test_append_to_unknown_machine_rejected(self, tmp_path, machine):
        ds = ShardedDataset.create(tmp_path / "store")
        with pytest.raises(StoreError, match="not in store"):
            ds.append_machine_window("ghost", machine.ras_log, machine.job_log)
