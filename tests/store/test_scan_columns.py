"""Store scan projection (`columns=`): correctness, order, and proof —
via an ``np.load`` spy — that unrequested column files are never
opened."""

import numpy as np
import pytest

from repro.store import ShardedDataset
from repro.store.manifest import StoreError
from repro.stream.equivalence import frames_equal

from tests.query.conftest import make_job_log, make_ras_log

MACHINE = "m0"
WINDOWS = 4


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    ds = ShardedDataset.create(tmp_path_factory.mktemp("scancols") / "store")
    ds.add_machine_trace(
        MACHINE, make_ras_log(240), make_job_log(50), windows=WINDOWS
    )
    return ds


@pytest.fixture()
def load_paths(monkeypatch):
    """Every file path np.load opens during the test."""
    paths: list[str] = []
    real = np.load

    def spy(path, *args, **kwargs):
        paths.append(str(path))
        return real(path, *args, **kwargs)

    monkeypatch.setattr(np, "load", spy)
    return paths


class TestColumnsArg:
    def test_subset_equals_full_scan_projection(self, store):
        full = store.scan(MACHINE, "ras")
        got = store.scan(MACHINE, "ras", columns=["severity", "recid"])
        assert got.columns == ["severity", "recid"]
        assert frames_equal(got, full.select(["severity", "recid"]))

    def test_untouched_column_files_never_opened(self, store, load_paths):
        store.scan(MACHINE, "ras", columns=["event_time", "severity"])
        assert load_paths, "scan should open the requested columns"
        for path in load_paths:
            assert ".message." not in path
            assert ".serialnumber." not in path
            assert ".recid." not in path

    def test_full_scan_opens_everything(self, store, load_paths):
        store.scan(MACHINE, "ras")
        assert any(".message." in path for path in load_paths)

    def test_unknown_column_raises_store_error(self, store):
        with pytest.raises(StoreError, match="unknown columns"):
            store.scan(MACHINE, "ras", columns=["nope"])

    def test_job_table_subset(self, store):
        full = store.scan(MACHINE, "job")
        got = store.scan(MACHINE, "job", columns=["user", "start_time"])
        assert frames_equal(got, full.select(["user", "start_time"]))


class TestColumnsWithTimeRange:
    def _one_window(self, store, table):
        shards = [
            s for s in store.manifest.select(MACHINE, table) if s.rows
        ]
        s = shards[len(shards) // 2]
        return s.time_min, np.nextafter(s.time_max, np.inf)

    def test_time_column_loaded_for_filter_then_dropped(
        self, store, load_paths
    ):
        q = self._one_window(store, "ras")
        got = store.scan(
            MACHINE, "ras", time_range=q, columns=["errcode"]
        )
        assert got.columns == ["errcode"]
        assert got.num_rows > 0
        # event_time was opened (the row filter needs it) but message
        # still was not
        assert any(".event_time." in p for p in load_paths)
        assert not any(".message." in p for p in load_paths)
        full = store.scan(MACHINE, "ras")
        t = full["event_time"]
        want = full.filter((t >= q[0]) & (t < q[1])).select(["errcode"])
        assert frames_equal(got, want)

    def test_all_pruned_returns_typed_empty_subset(self, store, load_paths):
        got = store.scan(
            MACHINE, "ras", time_range=(0.0, 1.0),
            columns=["recid", "severity"],
        )
        assert got.columns == ["recid", "severity"]
        assert got.num_rows == 0
        assert got["recid"].dtype == np.int64
        assert got["severity"].dtype == object
        assert load_paths == []  # nothing on disk was touched
