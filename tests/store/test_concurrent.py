"""Concurrent readers against json-last appends.

The store's crash-safety argument — shards first, then one atomic
``os.replace`` of the manifest — is also its concurrency argument: a
reader that opens the store *while* an append is in flight sees either
the previous manifest or the new one, and every shard the manifest it
got references is already fully on disk. These tests race real reader
threads against a sequence of appends and assert no torn state is ever
observable: every open validates clean, every scan row-count is an
exact prefix total, and the counts a single reader observes never go
backwards.
"""

import threading

import numpy as np
import pytest

from repro.store import ShardedDataset
from tests.stream.conftest import make_jobs, make_ras

MACHINE = "bgp"
WINDOWS = 24


@pytest.fixture()
def slices():
    """One trace cut into WINDOWS+1 half-open, appendable slices."""
    ras = make_ras(600, seed=31)
    job = make_jobs(ras, 90, seed=32)
    t = ras.frame["event_time"]
    s = job.frame["start_time"]
    lo = min(float(t.min()), float(s.min()))
    hi = max(float(t.max()), float(s.max()))
    edges = np.linspace(lo, hi, WINDOWS + 2)
    edges[-1] = np.nextafter(hi, np.inf)
    return [
        (
            ras.select_time(float(a), float(b)),
            job.select_time(float(a), float(b)),
        )
        for a, b in zip(edges[:-1], edges[1:])
    ]


def _seed_store(root, slices):
    ds = ShardedDataset.create(root)
    ras0, job0 = slices[0]
    ds.add_machine_trace(MACHINE, ras0, job0, windows=1)
    return ds


class TestConcurrentReaders:
    def test_scan_racing_append_never_torn(self, tmp_path, slices):
        """Readers hammer open+validate+scan while a writer appends."""
        root = tmp_path / "store"
        writer_ds = _seed_store(root, slices)

        valid_totals = set(
            np.cumsum([r.frame.num_rows for r, _ in slices]).tolist()
        )
        total = max(valid_totals)
        stop = threading.Event()
        failures: list[str] = []
        observed: list[list[int]] = []

        def reader():
            seen = []
            while True:
                try:
                    ds = ShardedDataset.open(root)
                    problems = ds.validate(verify_hashes=False)
                    if problems:
                        failures.append(f"torn manifest: {problems}")
                        break
                    rows = ds.load_ras(MACHINE).frame.num_rows
                except Exception as exc:  # any exception is a tear
                    failures.append(f"reader crashed: {exc!r}")
                    break
                if rows not in valid_totals:
                    failures.append(f"partial append visible: {rows}")
                    break
                if seen and rows < seen[-1]:
                    failures.append(f"rows went backwards: {seen[-1]}->{rows}")
                    break
                seen.append(rows)
                if stop.is_set() and rows == total:
                    break
            observed.append(seen)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for ras_k, job_k in slices[1:]:
            writer_ds.append_machine_window(MACHINE, ras_k, job_k)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert failures == []
        # every reader eventually saw the fully appended store
        assert all(seen and seen[-1] == total for seen in observed)

    def test_reader_mid_append_sees_old_or_new_window_count(
        self, tmp_path, slices
    ):
        """Window counts observable under race are exactly 1..K."""
        root = tmp_path / "store"
        writer_ds = _seed_store(root, slices)
        counts = set()
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                manifest = ShardedDataset.open(root).manifest
                shards = manifest.select(machine=MACHINE, table="ras")
                counts.add(len(shards))

        thread = threading.Thread(target=reader)
        thread.start()
        for ras_k, job_k in slices[1:]:
            writer_ds.append_machine_window(MACHINE, ras_k, job_k)
        stop.set()
        thread.join(timeout=30)
        assert counts <= set(range(1, len(slices) + 1))
        assert max(counts) >= 1
