"""Tier-1 smoke coverage for the performance benchmarks.

The full benchmarks live under ``benchmarks/`` and only run when named
explicitly; this keeps their helpers (workload generator, matcher
comparison) honest on every test run at a tiny scale.
"""

import numpy as np

from benchmarks.bench_perf_filtering import make_match_workload, make_stream
from repro.core import InterruptionMatcher, ReferenceInterruptionMatcher
from repro.perf import render_timings


class TestMatchWorkloadGenerator:
    def test_shapes_and_schema(self):
        ev, jl = make_match_workload(100, 250, seed=3)
        assert len(ev) == 100
        assert jl.num_jobs == 250
        # events carry valid midplane spans
        assert (ev.frame["mp_lo"] <= ev.frame["mp_hi"]).all()
        assert (ev.frame["mp_lo"] >= 0).all()
        assert (ev.frame["mp_hi"] < 80).all()
        # every job location parses to a legal partition of its size
        from repro.machine.partition import parse_partition

        for loc, size in zip(
            jl.frame["location"], jl.frame["size_midplanes"]
        ):
            assert parse_partition(loc).size == size

    def test_deterministic_per_seed(self):
        a, _ = make_match_workload(50, 100, seed=9)
        b, _ = make_match_workload(50, 100, seed=9)
        assert np.array_equal(a.frame["event_time"], b.frame["event_time"])

    def test_workload_produces_matches(self):
        ev, jl = make_match_workload(200, 400, seed=1)
        assert InterruptionMatcher().match(ev, jl).pairs.num_rows > 0


class TestTinyScaleEquivalence:
    def test_vectorized_equals_reference(self):
        ev, jl = make_match_workload(120, 300, seed=5)
        ref = ReferenceInterruptionMatcher().match(ev, jl, raw_events=ev)
        vec = InterruptionMatcher().match(ev, jl, raw_events=ev)
        for col in ref.pairs.columns:
            assert np.array_equal(ref.pairs[col], vec.pairs[col]), col
        assert ref.event_cases == vec.event_cases

    def test_vectorized_records_timings(self):
        ev, jl = make_match_workload(120, 300, seed=5)
        m = InterruptionMatcher().match(ev, jl, raw_events=ev)
        assert {t.stage for t in m.timings} >= {
            "match.index",
            "match.join",
            "match.cases",
            "match.assemble",
        }
        table = render_timings(m.timings)
        assert "match.join" in table and "total" in table


class TestFilterStreamGenerator:
    def test_stream_shape(self):
        stream = make_stream(500, n_types=10, n_locations=16)
        assert len(stream) == 500


class TestParallelIngestionWorkload:
    def test_generator_is_valid_and_deterministic(self):
        from benchmarks.bench_perf_parallel_ingestion import make_ras_log

        a = make_ras_log(300, seed=7)
        b = make_ras_log(300, seed=7)
        assert len(a) == 300
        assert np.array_equal(a.frame["event_time"], b.frame["event_time"])
        # times are strictly ordered and recids unique: a round-trip
        # through the strict reader must accept every row
        assert (np.diff(a.frame["event_time"]) >= 0).all()
        assert len(np.unique(a.frame["recid"])) == 300

    def test_round_trips_clean_under_strict(self, tmp_path):
        from benchmarks.bench_perf_parallel_ingestion import make_ras_log
        from repro.logs import read_ras_log, write_ras_log

        path = tmp_path / "ras.log"
        write_ras_log(make_ras_log(200, seed=7), path)
        log = read_ras_log(path, policy="strict", workers=2)
        assert len(log) == 200
