"""Package-level API hygiene: imports, __all__, version."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.frame",
    "repro.machine",
    "repro.stats",
    "repro.logs",
    "repro.workload",
    "repro.sched",
    "repro.faults",
    "repro.core",
    "repro.core.filtering",
    "repro.predict",
    "repro.policy",
    "repro.viz",
    "repro.simulate",
    "repro.query",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_importable(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", PACKAGES)
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_names_exist(self):
        """The package docstring's quickstart must stay runnable."""
        from repro.core import CoAnalysis
        from repro.simulate import CalibrationProfile, IntrepidSimulation

        assert callable(CoAnalysis)
        assert callable(IntrepidSimulation)
        assert callable(CalibrationProfile)


class TestCascadeMap:
    def test_companions_exist_in_catalog(self):
        from repro.faults.catalog import catalog_by_errcode
        from repro.faults.storms import CASCADE_MAP

        for primary, (companion, mean) in CASCADE_MAP.items():
            catalog_by_errcode(primary)
            catalog_by_errcode(companion)
            assert mean > 0

    def test_no_self_cascade(self):
        from repro.faults.storms import CASCADE_MAP

        for primary, (companion, _) in CASCADE_MAP.items():
            assert primary != companion

    def test_noise_templates_have_valid_severities(self):
        from repro.faults.storms import _NOISE_TEMPLATES
        from repro.logs.ras import COMPONENTS, SEVERITIES

        for msg_id, component, sub, errcode, severity, message in _NOISE_TEMPLATES:
            assert severity in SEVERITIES and severity != "FATAL"
            assert component in COMPONENTS
