"""Unit tests for the seeded log corruptor."""

import pytest

from repro.faults.corruption import (
    JOB_DEFECT_CLASSES,
    RAS_DEFECT_CLASSES,
    LogCorruptor,
)
from repro.logs import JobLog, RasLog, write_job_log, write_ras_log
from repro.logs.quarantine import DefectClass

from tests.logs.test_job import make_job
from tests.logs.test_ras import make_record


@pytest.fixture
def ras_path(tmp_path):
    records = [
        make_record(recid=i, t=1000.0 + 10.0 * i) for i in range(1, 201)
    ]
    path = tmp_path / "ras.log"
    write_ras_log(RasLog.from_records(records), path)
    return path


@pytest.fixture
def job_path(tmp_path):
    jobs = [
        make_job(job_id=i, start=1000.0 + 50.0 * i, end=1500.0 + 50.0 * i)
        for i in range(1, 101)
    ]
    path = tmp_path / "job.log"
    write_job_log(JobLog.from_records(jobs), path)
    return path


class TestConstruction:
    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            LogCorruptor(rate=1.5)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            LogCorruptor(kind="syslog")

    def test_ras_only_classes_rejected_for_job(self):
        with pytest.raises(ValueError, match="not injectable"):
            LogCorruptor(kind="job", classes=(DefectClass.DUPLICATE_RECID,))

    def test_default_classes_follow_kind(self):
        assert LogCorruptor(kind="ras").classes == RAS_DEFECT_CLASSES
        assert LogCorruptor(kind="job").classes == JOB_DEFECT_CLASSES


class TestDeterminism:
    def test_same_seed_same_output(self, ras_path):
        text = ras_path.read_text()
        a = LogCorruptor(seed=7, rate=0.1).corrupt_text(text)
        b = LogCorruptor(seed=7, rate=0.1).corrupt_text(text)
        assert a.to_bytes() == b.to_bytes()
        assert a.injected == b.injected

    def test_different_seed_different_output(self, ras_path):
        text = ras_path.read_text()
        a = LogCorruptor(seed=7, rate=0.1).corrupt_text(text)
        b = LogCorruptor(seed=8, rate=0.1).corrupt_text(text)
        assert a.to_bytes() != b.to_bytes()


class TestGroundTruth:
    def test_rate_zero_injects_nothing(self, ras_path):
        result = LogCorruptor(seed=1, rate=0.0).corrupt_text(
            ras_path.read_text()
        )
        assert result.num_injected == 0
        assert result.to_bytes() == ras_path.read_bytes()

    def test_tiny_rate_injects_at_least_one(self, ras_path):
        result = LogCorruptor(seed=1, rate=1e-6).corrupt_text(
            ras_path.read_text()
        )
        assert result.num_injected == 1

    def test_all_classes_covered_at_sufficient_rate(self, ras_path):
        result = LogCorruptor(seed=3, rate=0.2).corrupt_text(
            ras_path.read_text()
        )
        assert set(result.ground_truth) == set(RAS_DEFECT_CLASSES)

    def test_ground_truth_totals(self, ras_path):
        result = LogCorruptor(seed=3, rate=0.1).corrupt_text(
            ras_path.read_text()
        )
        assert sum(result.ground_truth.values()) == result.num_injected
        assert result.num_injected == 20  # round(0.1 * 200)

    def test_line_numbers_point_at_damage(self, ras_path):
        result = LogCorruptor(seed=5, rate=0.1).corrupt_text(
            ras_path.read_text()
        )
        clean = {
            line.encode("utf-8")
            for i, line in enumerate(
                ras_path.read_text().split("\n")[1:]
            )
            if line and i not in result.damaged_source_rows()
        }
        for inj in result.injected:
            damaged = result.lines[inj.line_no - 2]  # header is line 1
            if inj.defect is DefectClass.DUPLICATE_RECID:
                assert damaged in clean  # byte-exact copy of a clean row
            else:
                assert damaged not in clean

    def test_clean_row_mask_complements_damage(self, ras_path):
        result = LogCorruptor(seed=5, rate=0.1).corrupt_text(
            ras_path.read_text()
        )
        mask = result.clean_row_mask()
        assert len(mask) == result.num_source_rows == 200
        assert (~mask).sum() == len(result.damaged_source_rows())

    def test_summary_lists_classes(self, ras_path):
        result = LogCorruptor(seed=3, rate=0.2).corrupt_text(
            ras_path.read_text()
        )
        text = result.summary()
        for cls in RAS_DEFECT_CLASSES:
            assert cls.value in text


class TestFileRoundTrip:
    def test_corrupt_file_writes_bytes(self, ras_path, tmp_path):
        out = tmp_path / "ras_bad.log"
        result = LogCorruptor(seed=2, rate=0.1).corrupt_file(ras_path, out)
        assert out.read_bytes() == result.to_bytes()

    def test_header_survives(self, ras_path, tmp_path):
        out = tmp_path / "ras_bad.log"
        LogCorruptor(seed=2, rate=0.1).corrupt_file(ras_path, out)
        original_header = ras_path.read_text().split("\n")[0]
        assert out.read_bytes().split(b"\n")[0].decode() == original_header


class TestJobKind:
    def test_job_corruption_covers_its_taxonomy(self, job_path):
        result = LogCorruptor(seed=3, rate=0.2, kind="job").corrupt_text(
            job_path.read_text()
        )
        assert set(result.ground_truth) == set(JOB_DEFECT_CLASSES)

    def test_single_class_restriction(self, job_path):
        result = LogCorruptor(
            seed=3, rate=0.1, kind="job",
            classes=(DefectClass.BLANK_LINE,),
        ).corrupt_text(job_path.read_text())
        assert set(result.ground_truth) == {DefectClass.BLANK_LINE}
        assert result.num_injected == 10
