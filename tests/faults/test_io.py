"""The seeded IO fault-injection harness: deterministic schedules,
faithful fault semantics, and kill points that refuse to be swallowed."""

import errno
import os

import pytest

from repro.faults.io import (
    FaultKind,
    FaultPlan,
    FaultyFS,
    InjectedCrash,
    IOFault,
)


@pytest.fixture()
def victim(tmp_path):
    path = tmp_path / "feed.psv"
    path.write_bytes(b"header\n" + b"x" * 400 + b"\n")
    return str(path)


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.generate(42, n_faults=12)
        b = FaultPlan.generate(42, n_faults=12)
        assert a.faults == b.faults

    def test_different_seed_different_schedule(self):
        assert FaultPlan.generate(1).faults != FaultPlan.generate(2).faults

    def test_crash_is_opt_in(self):
        plan = FaultPlan.generate(7, n_faults=50)
        assert all(f.kind is not FaultKind.CRASH for f in plan.faults)

    def test_take_consumes_once(self):
        plan = FaultPlan([IOFault(op_index=3, kind=FaultKind.EIO)])
        assert plan.take(3, "any/path") is not None
        assert plan.take(3, "any/path") is None

    def test_take_respects_path_filter(self):
        plan = FaultPlan(
            [IOFault(op_index=1, kind=FaultKind.EIO, path_substr="ras")]
        )
        assert plan.take(1, "/tmp/job.psv") is None
        # the op index has passed; a filtered-out fault never fires
        assert plan.faults


class TestFaultyFS:
    def test_ops_counter_shared_across_calls(self, victim):
        fs = FaultyFS(FaultPlan())
        fs.stat(victim)
        fh = fs.open(victim)
        fh.read(4)
        fh.close()
        assert fs.ops == 3  # stat, open, read

    def test_eio_raises_retryable_oserror(self, victim):
        fs = FaultyFS(FaultPlan([IOFault(op_index=1, kind=FaultKind.EIO)]))
        with pytest.raises(OSError) as err:
            fs.stat(victim)
        assert err.value.errno == errno.EIO
        assert fs.injected == [(1, FaultKind.EIO, victim)]

    def test_short_read_caps_bytes(self, victim):
        fs = FaultyFS(
            FaultPlan(
                [IOFault(op_index=3, kind=FaultKind.SHORT_READ, payload=5)]
            )
        )
        fs.stat(victim)
        fh = fs.open(victim)
        assert len(fh.read(100)) == 5  # op 3: capped
        assert fh.read(100)  # next read proceeds from where it stopped
        fh.close()

    def test_stall_uses_injected_sleep(self, victim):
        naps = []
        fs = FaultyFS(
            FaultPlan(
                [IOFault(op_index=1, kind=FaultKind.STALL, payload=0.25)]
            ),
            sleep=naps.append,
        )
        fs.stat(victim)
        assert naps == [0.25]

    def test_rotate_is_byte_equal_copy_with_new_inode(self, victim):
        before_bytes = open(victim, "rb").read()
        before_ino = os.stat(victim).st_ino
        fs = FaultyFS(
            FaultPlan([IOFault(op_index=1, kind=FaultKind.ROTATE)])
        )
        st = fs.stat(victim)  # the fault fires, then stat sees the copy
        assert open(victim, "rb").read() == before_bytes
        assert st.st_ino != before_ino

    def test_truncate_discards_tail(self, victim):
        fs = FaultyFS(
            FaultPlan(
                [IOFault(op_index=1, kind=FaultKind.TRUNCATE, payload=7)]
            )
        )
        fs.stat(victim)
        assert os.path.getsize(victim) == 7

    def test_crash_escapes_except_exception(self, victim):
        fs = FaultyFS(
            FaultPlan([IOFault(op_index=1, kind=FaultKind.CRASH)])
        )
        with pytest.raises(InjectedCrash) as err:
            try:
                fs.stat(victim)
            except Exception:  # a recovery path must NOT absorb a kill
                pytest.fail("InjectedCrash was swallowed by except Exception")
        assert err.value.op_index == 1

    def test_faultless_fs_is_transparent(self, victim):
        fs = FaultyFS()
        with fs.open(victim) as fh:
            fh.seek(7)
            assert fh.read() == b"x" * 400 + b"\n"
        assert fs.injected == []
