"""Unit tests for RAS storm emission."""

import numpy as np
import pytest

from repro.faults import Incident, IncidentCause, StormEmitter
from repro.faults.catalog import catalog_by_errcode
from repro.machine.partition import Partition


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def make_incident(errcode="_bgp_err_kernel_panic", t=1000.0, loc="R10-M0-N03-J07",
                  jobs=(5,)):
    return Incident(
        time=t,
        fault_type=catalog_by_errcode(errcode),
        location=loc,
        cause=IncidentCause.TRANSIENT,
        interrupted_job_ids=jobs,
    )


def make_emitter(noise=0.0):
    return StormEmitter(t_start=0.0, duration=86400.0, noise_count_mean=noise,
                        cascade_probability=0.0)


class TestStorms:
    def test_storm_inflates_one_incident(self, rng):
        emitter = make_emitter()
        log = emitter.emit([make_incident()], {5: Partition(16, 2)}, rng)
        assert len(log) > 10  # kernel panic storm_mean is 110
        assert set(log.frame["errcode"]) == {"_bgp_err_kernel_panic"}
        assert set(log.frame["severity"]) == {"FATAL"}

    def test_first_record_at_incident_location_and_time(self, rng):
        emitter = make_emitter()
        log = emitter.emit([make_incident()], {5: Partition(16, 2)}, rng)
        first = log.frame.row(0)
        assert first["event_time"] == 1000.0
        assert first["location"] == "R10-M0-N03-J07"

    def test_kernel_fanout_within_partition(self, rng):
        emitter = make_emitter()
        log = emitter.emit([make_incident()], {5: Partition(16, 2)}, rng)
        from repro.machine.location import parse_location

        for loc in log.frame["location"]:
            mp = parse_location(loc).midplane_indices()[0]
            assert 16 <= mp < 18

    def test_ambient_storm_stays_at_location(self, rng):
        emitter = make_emitter()
        inc = Incident(
            time=50.0,
            fault_type=catalog_by_errcode("CARD_0411_CLOCK"),
            location="R04-M0-S",
            cause=IncidentCause.AMBIENT,
        )
        log = emitter.emit([inc], {}, rng)
        assert set(log.frame["location"]) == {"R04-M0-S"}

    def test_cascade_adds_companion_type(self, rng):
        emitter = StormEmitter(t_start=0.0, duration=86400.0,
                               noise_count_mean=0.0, cascade_probability=1.0)
        log = emitter.emit([make_incident()], {5: Partition(16, 2)}, rng)
        types = set(log.frame["errcode"])
        assert "_bgp_err_torus_retrans_fail" in types

    def test_storm_scale_shrinks(self, rng):
        small = StormEmitter(t_start=0.0, duration=86400.0, noise_count_mean=0.0,
                             cascade_probability=0.0, storm_scale=0.1)
        big = make_emitter()
        n_small = len(small.emit([make_incident()], {5: Partition(16, 2)},
                                 np.random.default_rng(1)))
        n_big = len(big.emit([make_incident()], {5: Partition(16, 2)},
                             np.random.default_rng(1)))
        assert n_small < n_big


class TestNoiseAndMerge:
    def test_noise_volume(self, rng):
        emitter = StormEmitter(t_start=0.0, duration=86400.0,
                               noise_count_mean=5000.0)
        log = emitter.emit([], {}, rng)
        assert 4500 < len(log) < 5500
        assert "FATAL" not in set(log.frame["severity"])

    def test_noise_severity_mix(self, rng):
        emitter = StormEmitter(t_start=0.0, duration=86400.0,
                               noise_count_mean=20000.0)
        log = emitter.emit([], {}, rng)
        counts = log.severity_counts()
        assert counts["INFO"] > counts["WARN"] > counts["ERROR"]

    def test_recids_sequential_and_sorted(self, rng):
        emitter = StormEmitter(t_start=0.0, duration=86400.0,
                               noise_count_mean=500.0)
        log = emitter.emit([make_incident(t=40000.0)], {5: Partition(16, 2)}, rng)
        recids = log.frame["recid"]
        times = log.frame["event_time"]
        assert list(recids) == list(range(1, len(log) + 1))
        assert (np.diff(times) >= 0).all()

    def test_empty_everything(self, rng):
        emitter = make_emitter()
        log = emitter.emit([], {}, rng)
        assert len(log) == 0
