"""Unit tests for ground-truth incident bookkeeping."""

import pytest

from repro.faults import GroundTruth, Incident, IncidentCause
from repro.faults.catalog import (
    APP_ERROR_TYPES,
    NONFATAL_FATAL_TYPES,
    FaultClass,
    catalog_by_errcode,
)


def incident(t=100.0, errcode="_bgp_err_kernel_panic",
             cause=IncidentCause.TRANSIENT, jobs=(1,), chain=-1):
    return Incident(
        time=t,
        fault_type=catalog_by_errcode(errcode),
        location="R00-M0-N00-J04",
        cause=cause,
        interrupted_job_ids=tuple(jobs),
        chain_id=chain,
    )


class TestIncident:
    def test_errcode_accessor(self):
        assert incident().errcode == "_bgp_err_kernel_panic"

    def test_interrupts(self):
        assert incident(jobs=(1,)).interrupts
        assert not incident(jobs=()).interrupts

    def test_redundancy_flags(self):
        assert incident(cause=IncidentCause.STICKY_REFIRE, chain=3).is_redundant
        assert incident(cause=IncidentCause.APPLICATION_RESUBMIT).is_redundant
        assert not incident(cause=IncidentCause.TRANSIENT).is_redundant
        assert not incident(cause=IncidentCause.STICKY_PRIMARY).is_redundant


class TestGroundTruth:
    @pytest.fixture
    def truth(self):
        gt = GroundTruth()
        gt.add(incident(t=300.0, cause=IncidentCause.TRANSIENT, jobs=(1,)))
        gt.add(incident(t=100.0, cause=IncidentCause.AMBIENT, jobs=(),
                        errcode="CARD_0411_CLOCK"))
        gt.add(incident(t=200.0, cause=IncidentCause.STICKY_PRIMARY, jobs=(2,)))
        gt.add(incident(t=250.0, cause=IncidentCause.STICKY_REFIRE, jobs=(3,),
                        chain=1))
        gt.add(incident(t=400.0, cause=IncidentCause.APPLICATION, jobs=(4, 5),
                        errcode="CiodHungProxy"))
        return gt

    def test_sort(self, truth):
        truth.sort()
        times = [i.time for i in truth.incidents]
        assert times == sorted(times)

    def test_counts(self, truth):
        assert truth.count(IncidentCause.TRANSIENT) == 1
        assert truth.count(IncidentCause.STICKY_PRIMARY,
                           IncidentCause.STICKY_REFIRE) == 2

    def test_interrupting_and_redundant(self, truth):
        assert len(truth.interrupting()) == 4
        assert len(truth.redundant()) == 1

    def test_interrupted_job_ids(self, truth):
        assert truth.interrupted_job_ids() == {1, 2, 3, 4, 5}

    def test_by_class(self, truth):
        app = truth.by_class(FaultClass.APPLICATION)
        assert len(app) == 1
        assert app[0].errcode == "CiodHungProxy"

    def test_summary(self, truth):
        s = truth.summary()
        assert s["incidents"] == 5
        assert s["interrupted_jobs"] == 5
        assert s["application"] == 1
        assert s["system"] == 3
        assert s["ambient"] == 1

    def test_extend(self):
        gt = GroundTruth()
        gt.extend([incident(), incident(t=2.0)])
        assert len(gt.incidents) == 2
