"""Unit tests for the system-fault processes."""

import numpy as np
import pytest

from repro.faults import SystemFaultProcess
from repro.faults.catalog import FaultClass
from repro.machine.location import parse_location
from repro.machine.partition import Partition


@pytest.fixture
def process():
    return SystemFaultProcess(duration=237 * 86400.0)


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestAmbientSchedule:
    def test_counts_near_budget(self, process, rng):
        events = process.ambient_schedule(rng)
        expected = process.ambient_count_mean + process.nonfatal_count_mean
        assert 0.6 * expected < len(events) < 1.6 * expected

    def test_sorted_and_in_window(self, process, rng):
        events = process.ambient_schedule(rng)
        times = [t for t, _, _ in events]
        assert times == sorted(times)
        assert all(0 <= t < process.duration for t in times)

    def test_locations_parse(self, process, rng):
        for _, _, loc in process.ambient_schedule(rng):
            parse_location(loc)  # must not raise

    def test_classes_are_ambient_or_nonfatal(self, process, rng):
        for _, ftype, _ in process.ambient_schedule(rng):
            assert ftype.fclass in (
                FaultClass.AMBIENT_IDLE,
                FaultClass.NONFATAL_FATAL,
            )

    def test_zero_budget(self, rng):
        p = SystemFaultProcess(
            duration=1000.0, ambient_count_mean=0.0, nonfatal_count_mean=0.0
        )
        assert p.ambient_schedule(rng) == []

    def test_wide_region_tilt(self, rng):
        p = SystemFaultProcess(duration=237 * 86400.0,
                               ambient_count_mean=4000.0, wide_tilt=5.0)
        events = p.ambient_schedule(rng)
        mids = [parse_location(loc).midplane_indices()[0] for _, _, loc in events]
        mids = np.array(mids)
        in_region = ((mids >= 32) & (mids < 64)).mean()
        # 32/80 midplanes with 5x weight => expected share 160/208 ~ 0.77
        assert in_region > 0.6


class TestPerRunHazard:
    def test_probability_grows_with_size(self, process, rng):
        def rate(size, n=4000):
            hits = sum(
                process.sample_job_system_failure(size, 3600.0, rng) is not None
                for _ in range(n)
            )
            return hits / n

        assert rate(64) > rate(8) > 0

    def test_offset_within_runtime(self, process, rng):
        for _ in range(500):
            res = process.sample_job_system_failure(80, 1000.0, rng)
            if res is not None:
                offset, ftype, sticky = res
                assert 0 <= offset < 1000.0
                assert ftype.fclass in (FaultClass.STICKY, FaultClass.TRANSIENT)
                assert sticky == (ftype.fclass is FaultClass.STICKY)

    def test_offsets_front_loaded(self, process, rng):
        """Infant-mortality law: the median strike lands well before
        the middle of the run (Obs. 10's mechanism)."""
        offsets = []
        while len(offsets) < 300:
            res = process.sample_job_system_failure(80, 10000.0, rng)
            if res is not None:
                offsets.append(res[0])
        assert np.median(offsets) < 4000.0

    def test_refire_delay_short(self, process, rng):
        delays = [process.refire_delay(rng) for _ in range(500)]
        assert min(delays) >= 15.0
        assert np.median(delays) < 300.0


class TestLocations:
    def test_incident_location_inside_partition(self, process, rng):
        p = Partition(32, 4)
        for _ in range(50):
            ft = process.sample_job_system_failure(80, 1e9, rng)
            if ft is None:
                continue
            loc = process.incident_location(p, ft[1], rng)
            mp = parse_location(loc).midplane_indices()[0]
            assert 32 <= mp < 36

    def test_location_in_midplane(self, process, rng):
        from repro.faults.catalog import TRANSIENT_TYPES

        loc = process.location_in_midplane(17, TRANSIENT_TYPES[0], rng)
        assert parse_location(loc).midplane_indices() == (17,)
