"""Unit tests for the application-error model."""

import numpy as np
import pytest

from repro.faults import ApplicationErrorModel
from repro.faults.catalog import FaultClass


@pytest.fixture
def rng():
    return np.random.default_rng(9)


def make_model(rng, fraction=0.5, n=400, size=4):
    model = ApplicationErrorModel(buggy_fraction=fraction)
    model.assign_bugs({f"/bin/a{i}": size for i in range(n)}, rng)
    return model


class TestAssignment:
    def test_fraction_respected(self, rng):
        model = make_model(rng, fraction=0.25, n=2000)
        assert 0.18 < model.num_buggy / 2000 < 0.32

    def test_large_executables_never_buggy(self, rng):
        model = ApplicationErrorModel(buggy_fraction=1.0)
        model.assign_bugs({"/bin/wide": 64}, rng)
        assert model.num_buggy == 0

    def test_multipliers_boost(self, rng):
        model = ApplicationErrorModel(buggy_fraction=0.05)
        paths = {f"/bin/a{i}": 1 for i in range(2000)}
        mult = {p: (5.0 if i < 1000 else 1.0) for i, p in enumerate(paths)}
        model.assign_bugs(paths, rng, multipliers=mult)
        boosted = sum(1 for p in list(paths)[:1000] if model.is_buggy(p))
        plain = sum(1 for p in list(paths)[1000:] if model.is_buggy(p))
        assert boosted > 2 * plain

    def test_bug_types_are_application_class(self, rng):
        model = make_model(rng)
        for path in list(b for b in model._bugs):
            assert model.bug(path).fault_type.fclass is FaultClass.APPLICATION


class TestRunFailures:
    def test_clean_executable_never_fails(self, rng):
        model = make_model(rng, fraction=0.0)
        assert model.sample_run_failure("/bin/a0", 1e6, 1, rng) is None

    def test_failure_rate_tracks_theta(self, rng):
        model = ApplicationErrorModel(buggy_fraction=1.0)
        model.assign_bugs({"/bin/x": 1}, rng)
        model._bugs["/bin/x"].theta = 0.8
        hits = sum(
            model.sample_run_failure("/bin/x", 1e9, 1, rng) is not None
            for _ in range(2000)
        )
        assert 0.7 < hits / 2000 < 0.9

    def test_offset_below_runtime(self, rng):
        model = ApplicationErrorModel(buggy_fraction=1.0)
        model.assign_bugs({"/bin/x": 1}, rng)
        model._bugs["/bin/x"].theta = 1.0
        for _ in range(200):
            res = model.sample_run_failure("/bin/x", 500.0, 1, rng)
            if res is not None:
                assert 0 < res[0] < 500.0

    def test_failures_front_loaded(self, rng):
        """Observation 11: most failures inside the first hour."""
        model = ApplicationErrorModel(buggy_fraction=1.0)
        model.assign_bugs({"/bin/x": 1}, rng)
        model._bugs["/bin/x"].theta = 1.0
        offsets = []
        while len(offsets) < 400:
            res = model.sample_run_failure("/bin/x", 1e9, 1, rng)
            if res is not None:
                offsets.append(res[0])
        assert np.mean(np.array(offsets) < 3600.0) > 0.6

    def test_beta_selection_raises_conditional_risk(self, rng):
        """The Figure 7 category-2 mechanism: executables observed to
        fail repeatedly have higher latent theta."""
        model = ApplicationErrorModel(buggy_fraction=1.0)
        paths = {f"/bin/x{i}": 1 for i in range(3000)}
        model.assign_bugs(paths, rng)
        once, once_fail = 0, 0
        thetas_all, thetas_failed = [], []
        for p in paths:
            if not model.is_buggy(p):
                continue
            theta = model.bug(p).theta
            thetas_all.append(theta)
            if rng.random() < theta:  # first observed run fails
                thetas_failed.append(theta)
        assert np.mean(thetas_failed) > np.mean(thetas_all)

    def test_resubmit_probability_decreases(self):
        model = ApplicationErrorModel()
        probs = [model.resubmit_probability(k) for k in range(1, 6)]
        assert probs == sorted(probs, reverse=True)
        assert all(0.0 < p <= 1.0 for p in probs)
