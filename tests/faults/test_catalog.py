"""Unit tests for the fault-type catalog."""

import pytest

from repro.faults import (
    APP_ERROR_TYPES,
    FAULT_CATALOG,
    NONFATAL_FATAL_TYPES,
    FaultClass,
    catalog_by_errcode,
)
from repro.faults.catalog import AMBIENT_TYPES, STICKY_TYPES, TRANSIENT_TYPES


class TestCatalogShape:
    """The §III-B / §IV type counts the catalog must reproduce."""

    def test_82_types_total(self):
        assert len(FAULT_CATALOG) == 82

    def test_class_counts(self):
        assert len(APP_ERROR_TYPES) == 8       # Obs. 2
        assert len(NONFATAL_FATAL_TYPES) == 2  # §IV-A
        assert len(STICKY_TYPES) == 4          # §IV-B
        assert len(AMBIENT_TYPES) == 49        # §IV-A undetermined
        assert len(TRANSIENT_TYPES) == 19

    def test_system_types_total_72(self):
        system = [t for t in FAULT_CATALOG if t.is_system]
        # 72 system + 8 application + 2 "fatal" alarms = 82
        assert len(system) - len(NONFATAL_FATAL_TYPES) == 72

    def test_errcodes_unique(self):
        codes = [t.errcode for t in FAULT_CATALOG]
        assert len(set(codes)) == len(codes)

    def test_six_components(self):
        comps = {t.component for t in FAULT_CATALOG}
        assert comps == {"KERNEL", "MMCS", "MC", "CARD", "DIAGS", "BAREMETAL"}

    def test_no_application_component(self):
        """§IV-B: no fatal event reports from the APPLICATION domain."""
        assert all(t.component != "APPLICATION" for t in FAULT_CATALOG)


class TestNamedTypes:
    """Types the paper names must exist with the right behaviour."""

    def test_bulk_power_nonfatal(self):
        t = catalog_by_errcode("BULK_POWER_FATAL")
        assert t.fclass is FaultClass.NONFATAL_FATAL
        assert not t.truly_interrupts

    def test_torus_fatal_sum_nonfatal(self):
        t = catalog_by_errcode("_bgp_err_torus_fatal_sum")
        assert t.fclass is FaultClass.NONFATAL_FATAL

    def test_l1_cache_parity_sticky(self):
        t = catalog_by_errcode("_bgp_err_cns_ras_storm_fatal")
        assert t.fclass is FaultClass.STICKY
        assert t.component == "KERNEL"

    def test_sticky_four_of_paper(self):
        expected = {
            "_bgp_err_cns_ras_storm_fatal",   # L1 cache parity
            "_bgp_err_ddr_controller",        # DDR controller
            "_bgp_err_fs_configuration",      # FS configuration
            "_bgp_err_link_card",             # link card
        }
        assert {t.errcode for t in STICKY_TYPES} == expected

    def test_ciod_hung_proxy_is_kernel_application_error(self):
        t = catalog_by_errcode("CiodHungProxy")
        assert t.fclass is FaultClass.APPLICATION
        assert t.component == "KERNEL"  # the §IV-B COMPONENT trap
        assert t.propagates

    def test_script_error_propagates(self):
        assert catalog_by_errcode("bg_code_script_error").propagates

    def test_only_two_propagating_types(self):
        prop = [t.errcode for t in FAULT_CATALOG if t.propagates]
        assert sorted(prop) == ["CiodHungProxy", "bg_code_script_error"]

    def test_unknown_errcode_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            catalog_by_errcode("nope")


class TestWeights:
    def test_positive_weights_and_storms(self):
        for t in FAULT_CATALOG:
            assert t.rate_weight > 0
            assert t.storm_mean >= 1.0

    def test_kernel_types_have_big_storms(self):
        """Kernel faults fan out across partitions (75% of fatal
        records come from KERNEL)."""
        kernel = [t.storm_mean for t in FAULT_CATALOG
                  if t.component == "KERNEL" and t.truly_interrupts]
        card = [t.storm_mean for t in FAULT_CATALOG if t.component == "CARD"]
        assert min(kernel) > max(card)
