"""Unit tests for checkpoint policy evaluation."""

import pytest

from repro.frame import Frame
from repro.policy import (
    HistoryAwarePolicy,
    NoCheckpointPolicy,
    PeriodicPolicy,
    SizeAwareYoungPolicy,
    evaluate_checkpoint_policy,
)
from tests.core.helpers import jobs


def interruptions(rows):
    """(job_id, category) pairs."""
    return Frame.from_rows(
        [{"job_id": j, "category": c} for j, c in rows],
        columns=["job_id", "category"],
    )


class TestPolicies:
    def test_periodic_schedule(self):
        times = PeriodicPolicy(interval=1000.0).checkpoint_times(1, 3500.0, False)
        assert times == [1000.0, 2000.0, 3000.0]

    def test_none_schedule(self):
        assert NoCheckpointPolicy().checkpoint_times(1, 1e6, True) == []

    def test_young_interval_shrinks_with_size(self):
        p = SizeAwareYoungPolicy(mtti=100000.0, checkpoint_cost=100.0)
        wide = p.checkpoint_times(64, 50000.0, False)
        narrow = p.checkpoint_times(1, 50000.0, False)
        assert len(wide) > len(narrow)

    def test_history_aware_defers_first_hour(self):
        p = HistoryAwarePolicy(mtti=5000.0, checkpoint_cost=50.0)
        with_history = p.checkpoint_times(16, 20000.0, True)
        without = p.checkpoint_times(16, 20000.0, False)
        assert all(t > 3600.0 for t in with_history)
        assert len(without) >= len(with_history)
        assert any(t <= 3600.0 for t in without)


class TestEvaluation:
    def test_clean_jobs_only_pay_overhead(self):
        jl = jobs([(1, "/a", 0.0, 5000.0, "R00-M0", 2)])
        out = evaluate_checkpoint_policy(
            PeriodicPolicy(interval=1000.0), jl, interruptions([]),
            checkpoint_cost=100.0,
        )
        # checkpoints at 1000..4000 fit (t + cost <= 5000)
        assert out.checkpoints_written == 4
        assert out.overhead_mp_seconds == 4 * 100.0 * 2
        assert out.lost_mp_seconds == 0.0

    def test_system_interruption_loses_since_last_checkpoint(self):
        jl = jobs([(1, "/a", 0.0, 2500.0, "R00-M0", 1)])
        out = evaluate_checkpoint_policy(
            PeriodicPolicy(interval=1000.0), jl, interruptions([(1, 1)]),
            checkpoint_cost=100.0,
        )
        # checkpoints at 1000, 2000 written; lost 2500 - 2100 = 400
        assert out.lost_mp_seconds == pytest.approx(400.0)
        assert out.interrupted_jobs == 1

    def test_no_checkpoint_loses_everything(self):
        jl = jobs([(1, "/a", 0.0, 2500.0, "R00-M0", 4)])
        out = evaluate_checkpoint_policy(
            NoCheckpointPolicy(), jl, interruptions([(1, 1)])
        )
        assert out.lost_mp_seconds == pytest.approx(2500.0 * 4)

    def test_app_error_checkpoints_save_nothing(self):
        jl = jobs([(1, "/a", 0.0, 2500.0, "R00-M0", 1)])
        out = evaluate_checkpoint_policy(
            PeriodicPolicy(interval=1000.0), jl, interruptions([(1, 2)]),
            checkpoint_cost=100.0,
        )
        assert out.lost_mp_seconds == pytest.approx(2500.0)
        assert out.overhead_mp_seconds > 0  # overhead still paid

    def test_app_history_learned_in_replay_order(self):
        """The second run of a code that app-failed earlier sees
        had_app_history=True."""

        class Probe:
            name = "probe"

            def __init__(self):
                self.calls = []

            def checkpoint_times(self, size, runtime, had_app_history):
                self.calls.append(had_app_history)
                return []

        probe = Probe()
        jl = jobs(
            [
                (1, "/buggy", 0.0, 100.0, "R00-M0", 1),
                (2, "/buggy", 1000.0, 1100.0, "R00-M0", 1),
            ]
        )
        evaluate_checkpoint_policy(probe, jl, interruptions([(1, 2)]))
        assert probe.calls == [False, True]

    def test_total_cost(self):
        jl = jobs([(1, "/a", 0.0, 2500.0, "R00-M0", 1)])
        out = evaluate_checkpoint_policy(
            PeriodicPolicy(interval=1000.0), jl, interruptions([(1, 1)]),
            checkpoint_cost=100.0,
        )
        assert out.total_cost == out.overhead_mp_seconds + out.lost_mp_seconds
