"""The span-tree renderer: self time, orphan roots, hot stages, gauges."""

from repro.viz.trace import (
    hot_stages,
    render_gauges,
    render_span_tree,
    render_trace,
)


def span(id, parent, name, wall, start=0.0, rows=-1, cpu=0.0):
    return {
        "id": id, "parent": parent, "name": name, "start_s": start,
        "wall_s": wall, "cpu_s": cpu, "rows": rows, "note": "",
    }


TREE = [
    span(1, None, "run", 10.0, start=0.0),
    span(2, 1, "ingest", 6.0, start=0.1, rows=100),
    span(3, 2, "chunk", 2.5, start=0.2),
    span(4, 2, "chunk", 2.5, start=0.3),
    span(5, 1, "filter", 1.0, start=7.0, rows=10),
]


class TestRenderSpanTree:
    def test_indentation_follows_depth(self):
        out = render_span_tree(TREE)
        lines = out.splitlines()
        assert any(line.startswith("run ") for line in lines)
        assert any(line.startswith("  ingest") for line in lines)
        assert any(line.startswith("    chunk") for line in lines)

    def test_self_time_subtracts_direct_children(self):
        out = render_span_tree(TREE)
        ingest_line = next(
            line for line in out.splitlines() if "ingest" in line
        )
        # ingest: 6.0 total, 2×2.5 children -> 1.0s self
        assert "6000.00ms" in ingest_line
        assert "1000.00ms" in ingest_line

    def test_rows_column(self):
        out = render_span_tree(TREE)
        ingest_line = next(
            line for line in out.splitlines() if "ingest" in line
        )
        assert ingest_line.rstrip().endswith("100")

    def test_orphan_parent_becomes_root(self):
        orphan = [span(7, 999, "lost", 1.0)]
        out = render_span_tree(orphan)
        assert any(
            line.startswith("lost ") for line in out.splitlines()
        )

    def test_empty_spans(self):
        out = render_span_tree([])
        assert "span" in out  # header renders even with no rows


class TestHotStages:
    def test_ranking_by_aggregate_self_time(self):
        ranked = hot_stages(TREE, top=5)
        names = [name for name, *_ in ranked]
        # chunk: 2×2.5=5.0 self beats run's 10-6-1=3.0
        assert names[0] == "chunk"
        assert names[1] == "run"
        chunk = ranked[0]
        assert chunk[1] == 5.0 and chunk[2] == 2

    def test_share_of_root(self):
        ranked = dict(
            (name, share) for name, _, _, share in hot_stages(TREE)
        )
        assert abs(ranked["chunk"] - 0.5) < 1e-9

    def test_top_truncates(self):
        assert len(hot_stages(TREE, top=2)) == 2

    def test_no_spans(self):
        assert hot_stages([]) == []


class TestRenderTrace:
    def test_header_and_sections(self):
        manifest = {
            "run": {"git_rev": "abcdef1234567890", "config_fingerprint": "ff"},
            "spans": TREE,
            "metrics": [1, 2],
            "observations": [],
        }
        out = render_trace(manifest, top=3)
        assert "git abcdef123456" in out
        assert "5 spans" in out and "2 metrics" in out
        assert "span tree" in out and "hot stages" in out

    def test_empty_manifest(self):
        out = render_trace({"run": {}, "spans": [], "metrics": [],
                            "observations": []})
        assert "0 spans" in out

    def test_gauges_section_appears_with_gauges(self):
        manifest = {
            "run": {},
            "spans": TREE,
            "metrics": [
                {"type": "metric", "kind": "counter", "name": "c",
                 "labels": {}, "value": 3},
                {"type": "metric", "kind": "monotonic_gauge",
                 "name": "stream.watermark", "labels": {},
                 "value": 1234.5},
            ],
            "observations": [],
        }
        out = render_trace(manifest)
        assert "gauges" in out
        assert "stream.watermark" in out
        # counters stay out of the levels table
        assert "\nc " not in out

    def test_no_gauges_no_section(self):
        manifest = {"run": {}, "spans": TREE, "metrics": [
            {"type": "metric", "kind": "counter", "name": "c",
             "labels": {}, "value": 3},
        ], "observations": []}
        assert "gauges" not in render_trace(manifest)


class TestRenderGauges:
    def test_levels_labels_and_monotone_flag(self):
        out = render_gauges([
            {"kind": "gauge", "name": "daemon.checkpoint.age_s",
             "labels": {}, "value": 4.25},
            {"kind": "monotonic_gauge", "name": "stream.watermark",
             "labels": {"table": "ras"}, "value": 100.0},
            {"kind": "counter", "name": "noise", "labels": {},
             "value": 9},
        ])
        lines = out.splitlines()
        assert any(
            "stream.watermark{table=ras}" in ln and ln.rstrip().endswith("^")
            for ln in lines
        )
        assert any("4.25" in ln for ln in lines)
        assert not any("noise" in ln for ln in lines)

    def test_unset_monotonic_gauge_renders_unset(self):
        out = render_gauges([
            {"kind": "monotonic_gauge", "name": "pos", "labels": {},
             "value": None},
        ])
        assert "unset" in out

    def test_no_gauges_placeholder(self):
        assert "(no gauges)" in render_gauges([])
