"""Dashboard rendering + Prometheus exposition (pure-text checks)."""

from repro.obs import MetricSample
from repro.viz.dash import (
    dashboard_from_ops_dir,
    render_dashboard,
    render_prometheus,
)


def counter(name, value, **labels):
    return {"name": name, "kind": "counter", "labels": labels,
            "value": value}


def gauge(name, value, **labels):
    return {"name": name, "kind": "gauge", "labels": labels, "value": value}


def sample(t, window_s, *records):
    return MetricSample(t=t, window_s=window_s, records=tuple(records))


HEALTH = {
    "machine": "bgp",
    "status": "degraded",
    "t": 12.0,
    "reasons": ["feed degraded (IO retries exhausted)"],
    "firing": {
        "drops": {"severity": "ERROR", "value": 0.7, "since": 8.0},
    },
}


class TestDashboard:
    def test_full_frame(self):
        samples = [
            sample(float(t), 1.0, counter("work", 10 * t), gauge("depth", t))
            for t in range(1, 6)
        ]
        heartbeats = [
            {"type": "heartbeat", "t": 5.0, "status": "degraded",
             "heartbeat": {"cycle": 5, "watermark_lag_s": 30.0,
                           "reorder_depth": 12, "store_backlog": 0}},
        ]
        alerts = [
            {"type": "alert", "rule": "drops", "kind": "firing", "t": 8.0,
             "value": 0.7},
        ]
        out = render_dashboard(
            samples, health=HEALTH, heartbeats=heartbeats, alerts=alerts
        )
        assert "[WARN] bgp — degraded" in out
        assert "feed degraded" in out
        assert "work" in out and "/s" in out
        assert "depth" in out
        assert "FIRING drops [ERROR]" in out
        assert "firing drops" in out
        assert "cycle=5" in out and "lag=30" in out

    def test_accepts_raw_records(self):
        # the ops-log tail arrives as dicts, not MetricSample objects
        out = render_dashboard(
            [sample(1.0, 1.0, counter("c", 5)).as_record()]
        )
        assert "c" in out

    def test_empty_everything(self):
        out = render_dashboard([])
        assert "no health snapshot" in out
        assert "(no samples)" in out
        assert "(quiet)" in out

    def test_unhealthy_badge(self):
        out = render_dashboard(
            [], health={"status": "unhealthy", "machine": "m"}
        )
        assert "[FAIL]" in out

    def test_series_cap_reports_dropped(self):
        records = [counter(f"m{i:02d}", i + 1) for i in range(20)]
        out = render_dashboard(
            [sample(1.0, 1.0, *records)], max_series=5
        )
        assert "+15 quieter series not shown" in out


class TestPrometheus:
    def test_counter_and_gauge(self):
        out = render_prometheus([
            counter("stream.rows", 7, table="ras"),
            gauge("depth", 3.5),
        ])
        assert "# TYPE repro_stream_rows counter" in out
        assert 'repro_stream_rows{table="ras"} 7.0' in out
        assert "# TYPE repro_depth gauge" in out
        assert "repro_depth 3.5" in out

    def test_histogram_expands(self):
        out = render_prometheus([
            {"name": "lat", "kind": "histogram", "labels": {},
             "count": 4, "sum": 10.0, "min": 1.0, "max": 4.0},
        ])
        assert "# TYPE repro_lat_count counter" in out
        assert "repro_lat_count 4.0" in out
        assert "repro_lat_sum 10.0" in out
        assert "# TYPE repro_lat_min gauge" in out
        assert "repro_lat_max 4.0" in out

    def test_never_set_gauge_is_nan(self):
        out = render_prometheus([
            {"name": "pos", "kind": "monotonic_gauge", "labels": {},
             "value": None},
        ])
        assert "repro_pos NaN" in out

    def test_empty(self):
        assert render_prometheus([]) == ""


class TestFromOpsDir:
    def test_missing_dir_degrades(self, tmp_path):
        text, health = dashboard_from_ops_dir(tmp_path / "nope")
        assert health is None
        assert "no health snapshot" in text

    def test_reads_real_ops_dir(self, tmp_path):
        from repro.obs import LiveTelemetry, MetricsRegistry

        registry = MetricsRegistry()
        clock_t = [0.0]
        live = LiveTelemetry(
            tmp_path / "ops", interval_s=1.0, registry=registry,
            machine="bgp", clock=lambda: clock_t[0],
        )
        registry.counter("work").inc(10)
        clock_t[0] = 2.0
        live.record_cycle({"cycle": 1, "reorder_depth": 3})
        text, health = dashboard_from_ops_dir(tmp_path / "ops")
        assert health["status"] == "healthy"
        assert "[ OK ] bgp" in text
        assert "work" in text
        assert "cycle=1" in text
