"""Unit tests for ASCII chart rendering."""

import numpy as np
import pytest

from repro.viz import bar_chart, cdf_plot, histogram, series_table, sparkline


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_extremes(self):
        s = sparkline([0, 0, 10])
        assert s[-1] == "█"
        assert s[0] == s[1]

    def test_constant_series(self):
        s = sparkline([5, 5, 5])
        assert len(set(s)) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_rows_and_alignment(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith(" a |")
        assert lines[1].startswith("bb |")

    def test_bar_lengths_proportional(self):
        out = bar_chart(["x", "y"], [1.0, 2.0], width=10)
        x_len = out.splitlines()[0].count("#")
        y_len = out.splitlines()[1].count("#")
        assert y_len == 10 and x_len == 5

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        assert "3%" in bar_chart(["a"], [3.0], unit="%")

    def test_empty(self):
        assert bar_chart([], []) == ""


class TestHistogram:
    def test_counts_sum(self):
        rng = np.random.default_rng(1)
        x = rng.exponential(10, 100)
        out = histogram(x, bins=5)
        assert len(out.splitlines()) == 5

    def test_log_bins(self):
        x = [1.0, 10.0, 100.0, 1000.0]
        out = histogram(x, bins=3, log_bins=True)
        assert len(out.splitlines()) == 3

    def test_empty(self):
        assert histogram([]) == "(empty)"


class TestCdfPlot:
    def test_shape(self):
        x = np.logspace(0, 5, 30)
        y = np.linspace(0.1, 1.0, 30)
        out = cdf_plot(x, y, width=40, height=8)
        lines = out.splitlines()
        assert lines[0].startswith("1.0 |")
        assert lines[-3].startswith("0.0 |")
        assert "*" in out

    def test_monotone_series_fills_corners(self):
        x = np.arange(10.0)
        y = np.linspace(0, 1, 10)
        out = cdf_plot(x, y, width=20, height=6)
        lines = out.splitlines()
        assert lines[0].rstrip().endswith("*")   # top right
        assert lines[-3][5] == "*"               # bottom left

    def test_validation(self):
        with pytest.raises(ValueError):
            cdf_plot([1.0], [0.5, 0.6])


class TestSeriesTable:
    def test_alignment_and_rows(self):
        out = series_table({"a": [1.0, 2.0], "b": [3.0, 4.0]},
                           index=["x", "y"])
        lines = out.splitlines()
        assert len(lines) == 3
        assert "a" in lines[0] and "b" in lines[0]
        assert lines[1].strip().startswith("x")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_table({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty(self):
        assert series_table({}) == ""
