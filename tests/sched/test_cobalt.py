"""Integration-style tests for the Cobalt DES on small workloads."""

import numpy as np
import pytest

from repro.faults.apperrors import ApplicationErrorModel
from repro.faults.catalog import catalog_by_errcode
from repro.faults.injector import IncidentCause
from repro.faults.processes import SystemFaultProcess
from repro.sched import CobaltSimulator
from repro.workload.sampler import JobSubmission

DAY = 86400.0


def submission(t, exe="/bin/a", size=1, runtime=1000.0, kind="fresh",
               user="u1", project="p1"):
    return JobSubmission(
        submit_time=t,
        executable=exe,
        user=user,
        project=project,
        size_midplanes=size,
        planned_runtime=runtime,
        kind=kind,
    )


def quiet_process(**kw):
    defaults = dict(
        duration=30 * DAY,
        ambient_count_mean=0.0,
        nonfatal_count_mean=0.0,
        hazard_coeff=0.0,
    )
    defaults.update(kw)
    return SystemFaultProcess(**defaults)


def make_sim(process=None, app=None, **kw):
    return CobaltSimulator(
        process=process or quiet_process(),
        app_errors=app or ApplicationErrorModel(buggy_fraction=0.0),
        t_start=0.0,
        duration=30 * DAY,
        **kw,
    )


class TestHappyPath:
    def test_all_jobs_complete(self):
        rng = np.random.default_rng(1)
        subs = [submission(i * 2000.0, exe=f"/bin/{i}") for i in range(20)]
        out = make_sim().run(subs, rng)
        assert out.job_log.num_jobs == 20
        assert out.unscheduled == 0
        assert len(out.ground_truth.incidents) == 0
        assert all(v == "" for v in out.interrupted_by.values())

    def test_runtimes_match_plan(self):
        rng = np.random.default_rng(2)
        subs = [submission(0.0, runtime=1234.0)]
        out = make_sim().run(subs, rng)
        rt = out.job_log.runtimes()
        assert rt[0] == pytest.approx(1234.0)

    def test_job_ids_sequential_in_start_order(self):
        rng = np.random.default_rng(3)
        subs = [submission(i * 100.0, exe=f"/bin/{i}", runtime=50.0)
                for i in range(10)]
        out = make_sim().run(subs, rng)
        assert list(out.job_log.frame["job_id"]) == list(range(1, 11))

    def test_queueing_when_machine_full(self):
        rng = np.random.default_rng(4)
        # two whole-machine jobs back to back
        subs = [
            submission(0.0, exe="/a", size=80, runtime=5000.0),
            submission(10.0, exe="/b", size=80, runtime=5000.0),
        ]
        out = make_sim().run(subs, rng)
        rows = list(out.job_log.frame.to_rows())
        assert rows[1]["start_time"] >= rows[0]["end_time"]

    def test_submissions_beyond_window_dropped(self):
        rng = np.random.default_rng(5)
        subs = [submission(31 * DAY, exe="/late")]
        out = make_sim().run(subs, rng)
        assert out.job_log.num_jobs == 0
        assert out.unscheduled == 1


class TestAmbientEvents:
    def test_ambient_never_interrupts(self):
        rng = np.random.default_rng(6)
        process = quiet_process(ambient_count_mean=40.0)
        subs = [submission(i * 1000.0, exe=f"/bin/{i}", runtime=500.0)
                for i in range(20)]
        out = make_sim(process=process).run(subs, rng)
        assert all(v == "" for v in out.interrupted_by.values())
        ambient = out.ground_truth.by_class(
            catalog_by_errcode("CARD_0411_CLOCK").fclass
        )
        assert all(not i.interrupts for i in ambient)

    def test_nonfatal_alarms_recorded(self):
        rng = np.random.default_rng(7)
        process = quiet_process(nonfatal_count_mean=30.0)
        out = make_sim(process=process).run([], rng)
        assert out.ground_truth.count(IncidentCause.NONFATAL_ALARM) > 5


class TestSystemFailures:
    def test_hazard_interrupts_jobs(self):
        rng = np.random.default_rng(8)
        process = quiet_process(hazard_coeff=0.5)  # huge hazard
        subs = [submission(i * 3000.0, exe=f"/bin/{i}", runtime=2000.0)
                for i in range(30)]
        out = make_sim(process=process,
                       retry_probability_system=0.0).run(subs, rng)
        interrupted = [j for j, e in out.interrupted_by.items() if e]
        assert len(interrupted) > 10
        # interrupted jobs end before their planned runtime
        frame = out.job_log.frame
        for r in frame.to_rows():
            if out.interrupted_by[r["job_id"]]:
                assert r["end_time"] - r["start_time"] < 2000.0

    def test_sticky_breakage_produces_refires(self):
        rng = np.random.default_rng(9)
        process = quiet_process(hazard_coeff=0.08, sticky_fraction=1.0)
        subs = [submission(i * 4000.0, exe=f"/bin/{i}", runtime=3000.0)
                for i in range(60)]
        sim = make_sim(process=process)
        sim.policy.affinity = 1.0
        out = sim.run(subs, rng)
        assert out.ground_truth.count(IncidentCause.STICKY_REFIRE) > 0

    def test_retry_after_interruption(self):
        rng = np.random.default_rng(10)
        process = quiet_process(hazard_coeff=0.5)
        subs = [submission(0.0, exe="/victim", runtime=2000.0)]
        out = make_sim(process=process,
                       retry_probability_system=1.0).run(subs, rng)
        # the retry chain produces more than one job record
        assert out.job_log.num_jobs > 1
        assert out.retry_same_location[1] >= 1


class TestApplicationErrors:
    def _buggy_model(self, theta=1.0):
        model = ApplicationErrorModel(buggy_fraction=1.0)
        rng = np.random.default_rng(0)
        model.assign_bugs({"/buggy": 1}, rng)
        model._bugs["/buggy"].theta = theta
        return model

    def test_buggy_job_interrupted_and_counted(self):
        rng = np.random.default_rng(11)
        out = make_sim(app=self._buggy_model()).run(
            [submission(0.0, exe="/buggy", runtime=1e5)], rng
        )
        causes = {i.cause for i in out.ground_truth.incidents}
        assert IncidentCause.APPLICATION in causes

    def test_resubmission_chain(self):
        rng = np.random.default_rng(12)
        out = make_sim(app=self._buggy_model(theta=1.0)).run(
            [submission(0.0, exe="/buggy", runtime=1e5)], rng
        )
        resub = out.ground_truth.count(IncidentCause.APPLICATION_RESUBMIT)
        assert resub >= 1
        assert out.job_log.num_jobs >= 2

    def test_propagating_type_can_kill_other_jobs(self):
        rng = np.random.default_rng(13)
        model = ApplicationErrorModel(buggy_fraction=1.0)
        model.assign_bugs({"/buggy": 1}, np.random.default_rng(0))
        bug = model._bugs["/buggy"]
        bug.theta = 1.0
        model._bugs["/buggy"] = type(bug)(
            fault_type=catalog_by_errcode("CiodHungProxy"), theta=1.0
        )
        subs = [
            submission(0.0, exe="/bystander", runtime=5e4, size=2),
            submission(10.0, exe="/buggy", runtime=1e5),
        ]
        sim = make_sim(app=model, propagation_probability=1.0,
                       propagation_victims_mean=3.0)
        out = sim.run(subs, rng)
        multi = [i for i in out.ground_truth.incidents
                 if len(i.interrupted_job_ids) > 1]
        assert multi, "propagating failure should claim a victim"


class TestInvariants:
    def test_no_overlapping_partitions(self):
        """At no instant may two running jobs share a midplane."""
        rng = np.random.default_rng(14)
        process = quiet_process(hazard_coeff=0.01)
        subs = [
            submission(
                float(rng.uniform(0, 10 * DAY)),
                exe=f"/bin/{i}",
                size=int(rng.choice([1, 2, 4, 16, 32])),
                runtime=float(rng.uniform(100, 20000)),
            )
            for i in range(300)
        ]
        out = make_sim(process=process).run(sorted(subs, key=lambda s: s.submit_time), rng)
        from repro.machine.partition import parse_partition

        intervals = []
        for r in out.job_log.frame.to_rows():
            p = parse_partition(r["location"])
            intervals.append((r["start_time"], r["end_time"], p))
        events = []
        for s, e, p in intervals:
            events.append((s, 1, p))
            events.append((e, 0, p))
        events.sort(key=lambda x: (x[0], x[1]))
        occupied = np.zeros(80, dtype=int)
        for _t, kind, p in events:
            sl = slice(p.start, p.start + p.size)
            if kind == 1:
                occupied[sl] += 1
                assert occupied[sl].max() <= 1, "double-booked midplane"
            else:
                occupied[sl] -= 1

    def test_deterministic_given_seed(self):
        def run(seed):
            rng = np.random.default_rng(seed)
            process = quiet_process(hazard_coeff=0.02,
                                    ambient_count_mean=10.0)
            subs = [submission(i * 777.0, exe=f"/bin/{i % 7}", runtime=600.0)
                    for i in range(50)]
            return make_sim(process=process).run(subs, rng)

        a, b = run(42), run(42)
        assert list(a.job_log.frame["end_time"]) == list(b.job_log.frame["end_time"])
        assert len(a.ground_truth.incidents) == len(b.ground_truth.incidents)
