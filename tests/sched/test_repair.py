"""Unit tests for breakage bookkeeping."""

import numpy as np
import pytest

from repro.faults.catalog import STICKY_TYPES
from repro.sched import BreakageTable


@pytest.fixture
def rng():
    return np.random.default_rng(2)


@pytest.fixture
def table():
    return BreakageTable()


class TestLifecycle:
    def test_open_and_get(self, table, rng):
        b = table.open(5, STICKY_TYPES[0], 100.0, chain_id=1, rng=rng)
        assert table.get(5) is b
        assert table.get(6) is None

    def test_close_removes(self, table, rng):
        b = table.open(5, STICKY_TYPES[0], 100.0, 1, rng)
        table.close(b)
        assert table.get(5) is None
        assert not b.alive

    def test_replacement(self, table, rng):
        b1 = table.open(5, STICKY_TYPES[0], 100.0, 1, rng)
        b2 = table.open(5, STICKY_TYPES[1], 200.0, 2, rng)
        assert table.get(5) is b2
        table.close(b1)  # closing the stale one leaves the new one
        assert table.get(5) is b2

    def test_live_breakages(self, table, rng):
        table.open(1, STICKY_TYPES[0], 0.0, 1, rng)
        table.open(2, STICKY_TYPES[0], 0.0, 2, rng)
        assert len(table.live_breakages()) == 2


class TestDetection:
    def test_record_kill_triggers_at_max(self, table, rng):
        b = table.open(5, STICKY_TYPES[0], 0.0, 1, rng)
        fired = False
        for _ in range(b.max_kills - 1):
            fired = b.record_kill()
        assert fired
        assert b.kills == b.max_kills

    def test_max_kills_at_least_two(self, table, rng):
        for mp in range(40):
            b = table.open(mp, STICKY_TYPES[0], 0.0, mp, rng)
            assert b.max_kills >= 2


class TestHardnessMixture:
    def test_fix_probability_bimodal(self, table, rng):
        probs = {
            table.open(mp, STICKY_TYPES[0], 0.0, mp, rng).reboot_fix_probability
            for mp in range(60)
        }
        assert probs <= {table.easy_fix_probability,
                         table.stubborn_fix_probability}
        assert len(probs) == 2  # both kinds appear in 60 draws

    def test_selection_effect(self, rng):
        """Surviving one reboot makes survival of the next more likely —
        the Figure 7 category-1 k=2 peak mechanism."""
        table = BreakageTable()
        first_survival, second_given_first = [], []
        for mp in range(2000):
            b = table.open(mp % 80, STICKY_TYPES[0], 0.0, mp, rng)
            s1 = not b.roll_reboot_fix(rng)
            first_survival.append(s1)
            if s1:
                second_given_first.append(not b.roll_reboot_fix(rng))
        p1 = np.mean(first_survival)
        p2 = np.mean(second_given_first)
        assert p2 > p1
