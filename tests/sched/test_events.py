"""Unit tests for the event queue."""

from repro.sched import EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_tie_breaks_by_insertion(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_payload_carried(self):
        q = EventQueue()
        q.push(1.0, "x", {"job": 7})
        assert q.pop().payload == {"job": 7}


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        token = q.push(1.0, "a")
        q.push(2.0, "b")
        q.cancel(token)
        assert q.pop().kind == "b"

    def test_cancel_idempotent(self):
        q = EventQueue()
        token = q.push(1.0, "a")
        q.cancel(token)
        q.cancel(token)
        assert len(q) == 0

    def test_len_tracks_live(self):
        q = EventQueue()
        t1 = q.push(1.0, "a")
        q.push(2.0, "b")
        assert len(q) == 2
        q.cancel(t1)
        assert len(q) == 1
        q.pop()
        assert len(q) == 0
        assert not q

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None
