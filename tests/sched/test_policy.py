"""Unit tests for the partition allocation policy."""

import numpy as np
import pytest

from repro.machine.partition import Partition
from repro.machine.topology import NUM_MIDPLANES
from repro.sched import IntrepidPolicy


@pytest.fixture
def policy():
    return IntrepidPolicy()


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def all_free():
    return np.ones(NUM_MIDPLANES, dtype=bool)


class TestRegionPreferences:
    def test_small_jobs_prefer_edge_region(self, policy, rng):
        picks = [policy.choose(1, all_free(), rng).start for _ in range(50)]
        in_small_region = [p for p in picks if 64 <= p < 80]
        assert len(in_small_region) == 50

    def test_wide_jobs_prefer_reserved_region(self, policy, rng):
        p = policy.choose(32, all_free(), rng)
        assert p.start == 32  # fully inside [32, 64)

    def test_medium_jobs_prefer_middle(self, policy, rng):
        picks = [policy.choose(8, all_free(), rng).start for _ in range(30)]
        assert all(4 <= s < 32 for s in picks)

    def test_small_falls_back_when_region_busy(self, policy, rng):
        free = all_free()
        free[64:80] = False
        p = policy.choose(1, free, rng)
        assert 0 <= p.start < 4  # secondary region

    def test_size_rounded_to_partition(self, policy, rng):
        p = policy.choose(3, all_free(), rng)
        assert p.size == 4


class TestAllocationConstraints:
    def test_none_when_no_fit(self, policy, rng):
        free = np.zeros(NUM_MIDPLANES, dtype=bool)
        assert policy.choose(1, free, rng) is None

    def test_partition_entirely_free(self, policy, rng):
        free = all_free()
        free[33] = False
        for _ in range(20):
            p = policy.choose(32, free, rng)
            assert not (p.start <= 33 < p.start + p.size)

    def test_whole_machine(self, policy, rng):
        p = policy.choose(80, all_free(), rng)
        assert p == Partition(0, 80)


class TestAffinity:
    def test_preferred_partition_honored(self, rng):
        policy = IntrepidPolicy(affinity=1.0)
        preferred = Partition(10, 1)
        p = policy.choose(1, all_free(), rng, preferred=preferred)
        assert p == preferred

    def test_zero_affinity_ignores_preference(self, rng):
        policy = IntrepidPolicy(affinity=0.0)
        preferred = Partition(10, 1)
        picks = {
            str(policy.choose(1, all_free(), rng, preferred=preferred))
            for _ in range(20)
        }
        assert str(preferred) not in picks  # small jobs go to 64-79

    def test_busy_preferred_falls_through(self, rng):
        policy = IntrepidPolicy(affinity=1.0)
        free = all_free()
        free[10] = False
        p = policy.choose(1, free, rng, preferred=Partition(10, 1))
        assert p != Partition(10, 1)

    def test_preferred_size_mismatch_ignored(self, rng):
        policy = IntrepidPolicy(affinity=1.0)
        p = policy.choose(4, all_free(), rng, preferred=Partition(10, 1))
        assert p.size == 4

    def test_statistical_affinity_rate(self, rng):
        policy = IntrepidPolicy(affinity=0.574)
        preferred = Partition(70, 1)
        hits = sum(
            policy.choose(1, all_free(), rng, preferred=preferred) == preferred
            for _ in range(2000)
        )
        assert 0.52 < hits / 2000 < 0.63
