"""Property-based tests for scheduler components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.topology import NUM_MIDPLANES
from repro.sched import EventQueue, IntrepidPolicy
from repro.workload.tables import SIZE_CLASSES


@given(
    st.lists(
        st.tuples(st.floats(0, 1e6, allow_nan=False), st.integers(0, 5)),
        min_size=0,
        max_size=60,
    )
)
def test_event_queue_pops_in_time_order(entries):
    q = EventQueue()
    for t, kind in entries:
        q.push(t, str(kind))
    times = []
    while q:
        times.append(q.pop().time)
    assert times == sorted(times)
    assert len(times) == len(entries)


@given(
    st.lists(st.booleans(), min_size=NUM_MIDPLANES, max_size=NUM_MIDPLANES),
    st.sampled_from(SIZE_CLASSES),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=150, deadline=None)
def test_policy_never_returns_busy_partition(free_list, size, seed):
    free = np.array(free_list, dtype=bool)
    rng = np.random.default_rng(seed)
    choice = IntrepidPolicy().choose(int(size), free, rng)
    if choice is not None:
        assert free[choice.start : choice.start + choice.size].all()
        assert choice.size >= size


@given(st.sampled_from(SIZE_CLASSES), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_policy_finds_partition_on_empty_machine(size, seed):
    free = np.ones(NUM_MIDPLANES, dtype=bool)
    rng = np.random.default_rng(seed)
    assert IntrepidPolicy().choose(int(size), free, rng) is not None


@given(
    st.lists(st.floats(1.0, 1e5, allow_nan=False), min_size=1, max_size=20),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_breakage_kill_detection_threshold(delays, seed):
    """record_kill fires exactly at max_kills regardless of cadence."""
    from repro.faults.catalog import STICKY_TYPES
    from repro.sched import BreakageTable

    rng = np.random.default_rng(seed)
    table = BreakageTable()
    b = table.open(0, STICKY_TYPES[0], 0.0, 1, rng)
    fired_at = None
    for i, _ in enumerate(delays, start=2):
        if b.record_kill():
            fired_at = i
            break
    if fired_at is not None:
        assert fired_at == b.max_kills
    else:
        assert b.kills < b.max_kills
