"""Unit tests for the failure-aware allocation policy."""

import numpy as np
import pytest

from repro.machine.partition import Partition
from repro.machine.topology import NUM_MIDPLANES
from repro.sched.failure_aware import FailureAwarePolicy


@pytest.fixture
def policy():
    return FailureAwarePolicy(cooldown=3600.0)


@pytest.fixture
def rng():
    return np.random.default_rng(4)


def all_free():
    return np.ones(NUM_MIDPLANES, dtype=bool)


class TestQuarantine:
    def test_avoids_killed_partition(self, policy, rng):
        killed = Partition(70, 1)
        policy.observe_interruption(1000.0, killed)
        for _ in range(30):
            choice = policy.choose(1, all_free(), rng, now=1500.0)
            assert choice != killed

    def test_quarantine_expires(self, policy, rng):
        killed = Partition(70, 1)
        policy.observe_interruption(1000.0, killed)
        picks = {
            str(policy.choose(1, all_free(), rng, now=1000.0 + 7200.0))
            for _ in range(200)
        }
        assert str(killed) in picks

    def test_whole_partition_quarantined(self, policy, rng):
        policy.observe_interruption(1000.0, Partition(32, 32))
        choice = policy.choose(32, all_free(), rng, now=1500.0)
        # the only in-region 32-partition is quarantined; fallback picks
        # the other aligned candidate
        assert choice is not None
        assert choice.start != 32 or choice.size != 32

    def test_fallback_when_everything_quarantined(self, policy, rng):
        policy.observe_interruption(1000.0, Partition(0, 80))
        choice = policy.choose(1, all_free(), rng, now=1200.0)
        assert choice is not None  # availability beats caution

    def test_preferred_dropped_when_quarantined(self, rng):
        policy = FailureAwarePolicy(cooldown=3600.0)
        policy.base.affinity = 1.0
        killed = Partition(70, 1)
        policy.observe_interruption(1000.0, killed)
        free = all_free()
        choice = policy.choose(1, free, rng, preferred=killed, now=1500.0)
        assert choice != killed

    def test_respects_busy_midplanes(self, policy, rng):
        free = np.zeros(NUM_MIDPLANES, dtype=bool)
        assert policy.choose(1, free, rng, now=0.0) is None


class TestSimulationIntegration:
    def test_reduces_refires_on_sticky_heavy_workload(self):
        """With sticky failures dominating, quarantining killed
        partitions removes a visible share of refire chains."""
        from repro.faults.apperrors import ApplicationErrorModel
        from repro.faults.injector import IncidentCause
        from repro.sched import CobaltSimulator
        from repro.sched.policy import IntrepidPolicy
        from tests.sched.test_cobalt import quiet_process, submission

        def run(policy):
            rng = np.random.default_rng(21)
            process = quiet_process(hazard_coeff=0.05, sticky_fraction=1.0)
            subs = [
                submission(i * 2500.0, exe=f"/bin/{i % 40}", runtime=2000.0)
                for i in range(300)
            ]
            sim = CobaltSimulator(
                process=process,
                app_errors=ApplicationErrorModel(buggy_fraction=0.0),
                t_start=0.0,
                duration=30 * 86400.0,
                policy=policy,
            )
            out = sim.run(subs, rng)
            return out.ground_truth.count(IncidentCause.STICKY_REFIRE)

        refires_default = run(IntrepidPolicy(affinity=0.75))
        refires_aware = run(FailureAwarePolicy(cooldown=12 * 3600.0))
        assert refires_aware <= refires_default
