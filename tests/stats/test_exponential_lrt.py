"""Unit tests for exponential fitting and the likelihood-ratio test."""

import numpy as np
import pytest

from repro.stats import compare_interarrival_models, fit_exponential


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


class TestExponentialFit:
    def test_rate_is_inverse_mean(self):
        fit = fit_exponential(np.array([2.0, 4.0, 6.0]))
        assert fit.rate == pytest.approx(1.0 / 4.0)
        assert fit.mean == pytest.approx(4.0)
        assert fit.variance == pytest.approx(16.0)

    def test_cdf_sf(self):
        fit = fit_exponential(np.array([1.0, 1.0, 4.0]))
        assert fit.cdf(0.0) == 0.0
        t = np.array([0.5, 2.0])
        assert np.allclose(fit.cdf(t) + fit.sf(t), 1.0)

    def test_constant_hazard(self):
        fit = fit_exponential(np.array([1.0, 3.0]))
        h = fit.hazard(np.array([1.0, 100.0]))
        assert h[0] == h[1] == pytest.approx(fit.rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponential(np.array([]))
        with pytest.raises(ValueError):
            fit_exponential(np.array([-1.0]))

    def test_loglik_at_mle(self, rng):
        x = rng.exponential(10.0, 1000)
        fit = fit_exponential(x)
        # MLE log-likelihood: n(log rate - 1)
        assert fit.log_likelihood == pytest.approx(len(x) * (np.log(fit.rate) - 1.0))


class TestLikelihoodRatio:
    def test_weibull_wins_on_weibull_data(self, rng):
        """The paper's core fit result: Weibull beats exponential on
        failure interarrivals with shape well below 1."""
        x = 8000.0 * rng.weibull(0.4, size=2000)
        cmp = compare_interarrival_models(x[x > 0])
        assert cmp.weibull_preferred
        assert cmp.p_value < 1e-6
        assert cmp.weibull.shape < 1.0

    def test_exponential_survives_on_exponential_data(self, rng):
        x = rng.exponential(100.0, size=500)
        cmp = compare_interarrival_models(x)
        # LRT should rarely reject; statistic should be small.
        assert cmp.lr_statistic < 10.0

    def test_lr_statistic_nonnegative(self, rng):
        x = rng.exponential(1.0, size=50)
        cmp = compare_interarrival_models(x)
        assert cmp.lr_statistic >= 0.0

    def test_aic_ordering_consistent(self, rng):
        x = 100.0 * rng.weibull(0.5, size=2000)
        cmp = compare_interarrival_models(x[x > 0])
        assert cmp.aic_weibull < cmp.aic_exponential

    def test_summary_mentions_preferred_model(self, rng):
        x = 100.0 * rng.weibull(0.4, size=1000)
        cmp = compare_interarrival_models(x[x > 0])
        assert "Weibull" in cmp.summary()
