"""Unit tests for the empirical CDF."""

import numpy as np
import pytest

from repro.stats import EmpiricalCDF


class TestEvaluation:
    @pytest.fixture(scope="class")
    def cdf(self):
        return EmpiricalCDF.from_samples(np.array([1.0, 2.0, 2.0, 5.0]))

    def test_step_values(self, cdf):
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.0) == 0.75
        assert cdf(4.9) == 0.75
        assert cdf(5.0) == 1.0

    def test_right_continuity(self, cdf):
        assert cdf(2.0) == cdf(2.0 + 1e-12)

    def test_vectorized(self, cdf):
        out = cdf(np.array([0.0, 2.0, 10.0]))
        assert list(out) == [0.0, 0.75, 1.0]

    def test_n(self, cdf):
        assert cdf.n == 4

    def test_points_staircase(self, cdf):
        x, y = cdf.points()
        assert list(x) == [1.0, 2.0, 2.0, 5.0]
        assert list(y) == [0.25, 0.5, 0.75, 1.0]


class TestQuantiles:
    def test_quantile_nearest_rank(self):
        cdf = EmpiricalCDF.from_samples(np.arange(1.0, 11.0))
        assert cdf.quantile(0.5) == 5.0
        assert cdf.quantile(1.0) == 10.0
        assert cdf.quantile(0.0) == 1.0

    def test_quantile_bounds_checked(self):
        cdf = EmpiricalCDF.from_samples(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_median_of_paper_like_sample(self):
        rng = np.random.default_rng(3)
        x = 8000 * rng.weibull(0.4, 5000)
        cdf = EmpiricalCDF.from_samples(x)
        assert cdf(cdf.quantile(0.5)) == pytest.approx(0.5, abs=0.01)


class TestSeriesAndDistance:
    def test_log_spaced_series_monotone(self):
        rng = np.random.default_rng(5)
        cdf = EmpiricalCDF.from_samples(rng.exponential(100, 1000))
        x, y = cdf.log_spaced_series(40)
        assert len(x) == 40
        assert (np.diff(y) >= 0).all()
        assert y[-1] == 1.0

    def test_ks_distance_to_own_model_small(self):
        rng = np.random.default_rng(6)
        x = rng.exponential(10.0, 5000)
        from repro.stats import fit_exponential

        fit = fit_exponential(x)
        ecdf = EmpiricalCDF.from_samples(x)
        assert ecdf.ks_distance(fit.cdf) < 0.03

    def test_ks_distance_to_wrong_model_large(self):
        rng = np.random.default_rng(8)
        x = 100.0 * rng.weibull(0.35, 5000)
        from repro.stats import fit_exponential

        fit = fit_exponential(x[x > 0])
        ecdf = EmpiricalCDF.from_samples(x[x > 0])
        assert ecdf.ks_distance(fit.cdf) > 0.1


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples(np.array([1.0, np.nan]))
