"""Unit tests for nonparametric hazard estimation."""

import numpy as np
import pytest

from repro.stats import NelsonAalen, hazard_rate_curve, is_decreasing_hazard


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(17)


class TestNelsonAalen:
    def test_small_sample_by_hand(self):
        na = NelsonAalen.from_samples(np.array([1.0, 2.0, 4.0]))
        # H(1)=1/3, H(2)=1/3+1/2, H(4)=1/3+1/2+1
        assert na(0.5) == 0.0
        assert na(1.0) == pytest.approx(1 / 3)
        assert na(3.0) == pytest.approx(1 / 3 + 1 / 2)
        assert na(10.0) == pytest.approx(1 / 3 + 1 / 2 + 1.0)

    def test_monotone_nondecreasing(self, rng):
        na = NelsonAalen.from_samples(rng.exponential(10.0, 500))
        t = np.linspace(0, 50, 200)
        h = na(t)
        assert (np.diff(h) >= -1e-12).all()

    def test_tracks_exponential_truth(self, rng):
        """For Exp(rate), H(t) = rate * t."""
        rate = 0.2
        na = NelsonAalen.from_samples(rng.exponential(1 / rate, 20000))
        for t in (1.0, 3.0, 5.0):
            assert na(t) == pytest.approx(rate * t, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            NelsonAalen.from_samples(np.array([]))
        with pytest.raises(ValueError):
            NelsonAalen.from_samples(np.array([1.0, -2.0]))


class TestHazardRateCurve:
    def test_exponential_is_flat(self, rng):
        x = rng.exponential(100.0, 20000)
        centers, rates = hazard_rate_curve(x, n_bins=6)
        valid = rates > 0
        spread = rates[valid].max() / rates[valid].min()
        assert spread < 5.0  # flat-ish within estimation noise

    def test_weibull_low_shape_decreases(self, rng):
        x = 100.0 * rng.weibull(0.4, 20000)
        x = x[x > 0]
        centers, rates = hazard_rate_curve(x, n_bins=6)
        assert rates[0] > rates[-1] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            hazard_rate_curve(np.array([1.0, 2.0]), n_bins=8)
        with pytest.raises(ValueError):
            hazard_rate_curve(np.array([0.0] * 20))


class TestDecreasingHazardCheck:
    def test_weibull_detected(self, rng):
        x = 1000.0 * rng.weibull(0.45, 5000)
        assert is_decreasing_hazard(x[x > 0])

    def test_increasing_hazard_rejected(self, rng):
        x = 1000.0 * rng.weibull(3.0, 5000)
        assert not is_decreasing_hazard(x[x > 0])

    def test_model_free_on_simulated_failures(self):
        """The failure stream of the reference simulator is decreasing-
        hazard — the mechanism behind Obs. 10."""
        from repro.core.events import fatal_event_table
        from repro.simulate import CalibrationProfile, IntrepidSimulation

        trace = IntrepidSimulation(CalibrationProfile(seed=3, scale=0.1)).run()
        gaps = fatal_event_table(trace.ras_log).interarrival_times()
        # raw storm gaps are massively front-loaded
        assert is_decreasing_hazard(gaps)
