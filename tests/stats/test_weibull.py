"""Unit tests for Weibull MLE fitting."""

import numpy as np
import pytest

from repro.stats import WeibullFit, fit_weibull


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


class TestRecovery:
    @pytest.mark.parametrize("shape,scale", [(0.4, 8000.0), (0.6, 70000.0), (1.5, 10.0)])
    def test_parameters_recovered(self, rng, shape, scale):
        x = scale * rng.weibull(shape, size=20000)
        x = x[x > 0]
        fit = fit_weibull(x)
        assert fit.shape == pytest.approx(shape, rel=0.05)
        assert fit.scale == pytest.approx(scale, rel=0.05)

    def test_exponential_data_gives_shape_one(self, rng):
        x = rng.exponential(100.0, size=20000)
        fit = fit_weibull(x)
        assert fit.shape == pytest.approx(1.0, rel=0.05)

    def test_mean_formula(self):
        fit = WeibullFit(shape=0.5, scale=100.0, n=10, log_likelihood=0.0)
        # mean = scale * Gamma(3) = 100 * 2
        assert fit.mean == pytest.approx(200.0)

    def test_variance_formula(self):
        fit = WeibullFit(shape=1.0, scale=50.0, n=10, log_likelihood=0.0)
        assert fit.variance == pytest.approx(2500.0)

    def test_table4_regime(self, rng):
        """Shapes and scales of Table IV order of magnitude fit cleanly."""
        x = 8116.7 * rng.weibull(0.387, size=5000)
        fit = fit_weibull(x[x > 0])
        assert 0.3 < fit.shape < 0.5
        assert fit.decreasing_hazard


class TestDistributionFunctions:
    @pytest.fixture(scope="class")
    def fit(self):
        return WeibullFit(shape=0.5, scale=1000.0, n=100, log_likelihood=0.0)

    def test_cdf_limits(self, fit):
        assert fit.cdf(0.0) == 0.0
        assert fit.cdf(1e12) == pytest.approx(1.0)

    def test_cdf_sf_complement(self, fit):
        t = np.array([1.0, 10.0, 1000.0])
        assert np.allclose(fit.cdf(t) + fit.sf(t), 1.0)

    def test_cdf_monotone(self, fit):
        t = np.linspace(0, 5000, 100)
        assert (np.diff(fit.cdf(t)) >= 0).all()

    def test_hazard_decreasing_for_shape_below_one(self, fit):
        t = np.array([10.0, 100.0, 1000.0])
        h = fit.hazard(t)
        assert h[0] > h[1] > h[2]

    def test_scalar_in_scalar_out(self, fit):
        assert isinstance(fit.cdf(5.0), float)
        assert isinstance(fit.hazard(5.0), float)

    def test_conditional_probability_decreases_with_elapsed(self, fit):
        """Decreasing hazard: surviving longer lowers near-term risk —
        the mechanism behind Observation 10."""
        p_fresh = fit.conditional_interruption_probability(0.0, 100.0)
        p_aged = fit.conditional_interruption_probability(10000.0, 100.0)
        assert p_fresh > p_aged

    def test_conditional_probability_bounds(self, fit):
        p = fit.conditional_interruption_probability(100.0, 100.0)
        assert 0.0 <= p <= 1.0


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="at least 2"):
            fit_weibull(np.array([1.0]))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            fit_weibull(np.array([1.0, 0.0]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            fit_weibull(np.array([1.0, np.nan]))

    def test_identical_samples_rejected(self):
        with pytest.raises(ValueError, match="identical"):
            fit_weibull(np.full(10, 3.0))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            fit_weibull(np.ones((2, 2)))

    def test_loglik_finite(self):
        fit = fit_weibull(np.array([1.0, 2.0, 3.0, 10.0]))
        assert np.isfinite(fit.log_likelihood)
