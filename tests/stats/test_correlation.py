"""Unit tests for Pearson correlation and occurrence matrices."""

import numpy as np
import pytest

from repro.stats import occurrence_matrix, pearson, pearson_matrix


class TestPearson:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_vector_gives_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        x, y = rng.random(50), rng.random(50)
        assert pearson(x, y) == pytest.approx(pearson(y, x))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))

    def test_range(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            r = pearson(rng.random(30), rng.random(30))
            assert -1.0 <= r <= 1.0


class TestOccurrenceMatrix:
    def test_binning(self):
        times = np.array([0.0, 5.0, 10.0, 15.0])
        codes = np.array([0, 0, 1, 1])
        occ = occurrence_matrix(times, codes, n_types=2, bin_width=10.0)
        assert occ.shape == (2, 2)
        assert occ[0, 0] == 2  # type 0 at t=0,5
        assert occ[1, 1] == 2  # type 1 at t=10,15

    def test_total_preserved(self):
        rng = np.random.default_rng(3)
        times = rng.uniform(0, 1000, 200)
        codes = rng.integers(0, 5, 200)
        occ = occurrence_matrix(times, codes, n_types=5, bin_width=50.0)
        assert occ.sum() == 200

    def test_empty(self):
        occ = occurrence_matrix(np.array([]), np.array([]), n_types=3, bin_width=10.0)
        assert occ.shape == (3, 1)
        assert occ.sum() == 0

    def test_explicit_window(self):
        occ = occurrence_matrix(
            np.array([50.0]), np.array([0]), n_types=1, bin_width=10.0,
            t_start=0.0, t_end=100.0,
        )
        assert occ.shape == (1, 11)
        assert occ[0, 5] == 1

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            occurrence_matrix(np.array([1.0]), np.array([0]), 1, 0.0)


class TestPearsonMatrix:
    def test_diagonal_is_one_for_varying_rows(self):
        rng = np.random.default_rng(4)
        occ = rng.integers(0, 10, size=(4, 100))
        corr = pearson_matrix(occ)
        assert np.allclose(np.diag(corr), 1.0)

    def test_matches_pairwise_pearson(self):
        rng = np.random.default_rng(5)
        occ = rng.integers(0, 10, size=(3, 50)).astype(float)
        corr = pearson_matrix(occ)
        assert corr[0, 1] == pytest.approx(pearson(occ[0], occ[1]))

    def test_constant_row_zeroed(self):
        occ = np.array([[1, 1, 1], [1, 2, 3]], dtype=float)
        corr = pearson_matrix(occ)
        assert corr[0, 0] == 0.0
        assert corr[0, 1] == 0.0

    def test_co_occurring_types_correlate(self):
        """Two fault types firing in the same bursts — the §IV-B
        assignment signal."""
        base = np.zeros(100)
        base[[10, 40, 70]] = 5
        noise = np.zeros(100)
        noise[[20, 55]] = 3
        corr = pearson_matrix(np.vstack([base, base * 2, noise]))
        assert corr[0, 1] > 0.99
        assert corr[0, 2] < 0.3
