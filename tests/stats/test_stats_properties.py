"""Property-based tests for the stats substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats import (
    EmpiricalCDF,
    compare_interarrival_models,
    fit_exponential,
    fit_weibull,
    gain_ratio,
    pearson,
)

positive_samples = hnp.arrays(
    np.float64,
    st.integers(min_value=5, max_value=200),
    elements=st.floats(min_value=0.01, max_value=1e6),
)


@given(positive_samples)
@settings(max_examples=60, deadline=None)
def test_weibull_loglik_beats_exponential(x):
    """The nested model can never out-score the nesting model at MLE."""
    assume(len(np.unique(x)) > 1)
    w = fit_weibull(x)
    e = fit_exponential(x)
    assert w.log_likelihood >= e.log_likelihood - 1e-6


@given(positive_samples)
@settings(max_examples=60, deadline=None)
def test_weibull_shape_positive_and_cdf_valid(x):
    assume(len(np.unique(x)) > 1)
    fit = fit_weibull(x)
    assert fit.shape > 0
    assert fit.scale > 0
    c = fit.cdf(np.sort(x))
    assert ((c >= 0) & (c <= 1.0 + 1e-12)).all()
    assert (np.diff(c) >= -1e-12).all()


@given(positive_samples)
@settings(max_examples=60, deadline=None)
def test_lrt_pvalue_in_unit_interval(x):
    assume(len(np.unique(x)) > 1)
    cmp = compare_interarrival_models(x)
    assert 0.0 <= cmp.p_value <= 1.0
    assert cmp.lr_statistic >= 0.0


@given(positive_samples)
@settings(max_examples=60, deadline=None)
def test_ecdf_is_a_cdf(x):
    ecdf = EmpiricalCDF.from_samples(x)
    assert ecdf(-1.0) == 0.0
    assert ecdf(float(x.max())) == 1.0
    grid = np.sort(x)
    vals = ecdf(grid)
    assert (np.diff(vals) >= 0).all()


@given(positive_samples)
@settings(max_examples=60, deadline=None)
def test_ecdf_quantile_inverse(x):
    ecdf = EmpiricalCDF.from_samples(x)
    for q in (0.1, 0.5, 0.9):
        v = ecdf.quantile(q)
        assert ecdf(v) >= q - 1e-12


@given(
    hnp.arrays(np.float64, 30, elements=st.floats(-1e3, 1e3)),
    hnp.arrays(np.float64, 30, elements=st.floats(-1e3, 1e3)),
)
@settings(max_examples=100)
def test_pearson_bounded(x, y):
    r = pearson(x, y)
    assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


@given(
    st.lists(st.integers(0, 1), min_size=2, max_size=100),
    st.lists(st.integers(0, 5), min_size=2, max_size=100),
)
@settings(max_examples=100)
def test_gain_ratio_bounded(labels, feature):
    n = min(len(labels), len(feature))
    g = gain_ratio(np.array(labels[:n]), np.array(feature[:n]))
    assert -1e-9 <= g <= 1.0 + 1e-9
