"""Unit tests for information-gain feature ranking and bootstrap CIs."""

import numpy as np
import pytest

from repro.stats import bootstrap_ci, entropy, gain_ratio, rank_features
from repro.stats.infogain import conditional_entropy, information_gain


class TestEntropy:
    def test_uniform_binary_is_one_bit(self):
        assert entropy(np.array([0, 1, 0, 1])) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        assert entropy(np.zeros(10)) == 0.0

    def test_empty_is_zero(self):
        assert entropy(np.array([])) == 0.0

    def test_four_way_uniform(self):
        assert entropy(np.array([0, 1, 2, 3])) == pytest.approx(2.0)

    def test_string_labels(self):
        assert entropy(np.array(["a", "b"], dtype=object)) == pytest.approx(1.0)


class TestInformationGain:
    def test_perfect_predictor(self):
        labels = np.array([0, 0, 1, 1])
        feature = np.array(["x", "x", "y", "y"], dtype=object)
        assert information_gain(labels, feature) == pytest.approx(1.0)
        assert gain_ratio(labels, feature) == pytest.approx(1.0)

    def test_useless_predictor(self):
        labels = np.array([0, 1, 0, 1])
        feature = np.array(["x", "x", "y", "y"], dtype=object)
        assert information_gain(labels, feature) == pytest.approx(0.0)

    def test_conditional_entropy_bounds(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 100)
        feature = rng.integers(0, 4, 100)
        ce = conditional_entropy(labels, feature)
        assert 0.0 <= ce <= entropy(labels) + 1e-12

    def test_constant_feature_gain_ratio_zero(self):
        labels = np.array([0, 1, 0, 1])
        assert gain_ratio(labels, np.zeros(4)) == 0.0

    def test_gain_ratio_penalizes_fragmentation(self):
        """A many-valued feature with mild signal must not beat a
        two-valued feature with strong signal — Observation 12's point
        about suspicious users."""
        rng = np.random.default_rng(2)
        n = 2000
        labels = rng.integers(0, 2, n)
        strong = labels.copy()  # 2-valued, perfectly aligned
        fragmented = np.arange(n) % 500  # 500-valued, unrelated
        assert gain_ratio(labels, strong) > gain_ratio(labels, fragmented)


class TestRankFeatures:
    def test_order_and_fields(self):
        rng = np.random.default_rng(3)
        n = 500
        labels = rng.integers(0, 2, n)
        feats = {
            "size": labels * 2,          # perfect
            "noise": rng.integers(0, 3, n),
            "constant": np.zeros(n, dtype=int),
        }
        ranked = rank_features(labels, feats)
        assert ranked[0].name == "size"
        assert ranked[-1].name == "constant"
        assert ranked[0].gain_ratio >= ranked[1].gain_ratio

    def test_deterministic_tie_break(self):
        labels = np.array([0, 1])
        feats = {"b": np.array([0, 0]), "a": np.array([1, 1])}
        ranked = rank_features(labels, feats)
        assert [s.name for s in ranked] == ["a", "b"]


class TestBootstrap:
    def test_ci_contains_true_mean_usually(self):
        rng = np.random.default_rng(4)
        x = rng.exponential(100.0, size=400)
        ci = bootstrap_ci(x, n_resamples=500, rng=rng)
        assert ci.low < ci.estimate < ci.high
        assert 100.0 in ci

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(5)
        small = bootstrap_ci(rng.exponential(1.0, 50), n_resamples=300, rng=rng)
        large = bootstrap_ci(rng.exponential(1.0, 5000), n_resamples=300, rng=rng)
        assert (large.high - large.low) < (small.high - small.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), confidence=1.5)

    def test_custom_statistic(self):
        rng = np.random.default_rng(6)
        x = rng.exponential(10.0, 200)
        ci = bootstrap_ci(x, statistic=np.median, n_resamples=200, rng=rng)
        assert ci.low <= np.median(x) <= ci.high
