#!/usr/bin/env python
"""Tune the §VII failure predictor's alarm threshold on a trace.

Sweeps the alarm threshold of the location-aware job-risk predictor,
prints the precision/recall trade-off with terminal charts, and marks
the operating point maximizing protected work under a configurable
alarm budget (proactive actions — checkpoint-now, migrate, delay —
aren't free, so the site caps how often the predictor may cry wolf).

Usage::

    python examples/predictor_tuning.py [--scale 0.2] [--alarm-budget 0.05]
"""

import argparse

import numpy as np

from repro.core import CoAnalysis
from repro.predict import (
    JobRiskPredictor,
    MidplaneHazard,
    RiskWeights,
    sweep_thresholds,
)
from repro.simulate import CalibrationProfile, IntrepidSimulation
from repro.viz import series_table, sparkline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--alarm-budget", type=float, default=0.05,
        help="max fraction of jobs that may raise alarms (default 5%%)",
    )
    args = parser.parse_args()

    print(f"building trace (scale={args.scale}) and running co-analysis ...")
    trace = IntrepidSimulation(
        CalibrationProfile(seed=args.seed, scale=args.scale)
    ).run()
    result = CoAnalysis().run(trace.ras_log, trace.job_log)
    shape = result.interarrivals.after.weibull.shape

    def make():
        return JobRiskPredictor(
            hazard=MidplaneHazard(shape=shape), weights=RiskWeights()
        )

    thresholds = np.geomspace(0.05, 20.0, 10)
    print(f"sweeping {len(thresholds)} thresholds ...\n")
    results = sweep_thresholds(
        make, trace.job_log, result.interruptions, thresholds
    )

    print("=" * 64)
    print("PREDICTOR OPERATING CURVE (category-1 interruptions)")
    print("=" * 64)
    print(
        series_table(
            {
                "threshold": [t for t, _ in results],
                "precision": [s.precision for _, s in results],
                "recall": [s.recall for _, s in results],
                "alarm_rate": [s.alarm_rate for _, s in results],
                "work_cover": [s.work_coverage for _, s in results],
            },
            index=[f"#{i}" for i in range(len(results))],
        )
    )
    print("\nrecall curve:     ", sparkline([s.recall for _, s in results]))
    print("precision curve:  ", sparkline([s.precision for _, s in results]))

    feasible = [(t, s) for t, s in results if s.alarm_rate <= args.alarm_budget]
    if feasible:
        best_t, best = max(feasible, key=lambda ts: ts[1].work_coverage)
        print(
            f"\nbest under a {100 * args.alarm_budget:.0f}% alarm budget: "
            f"threshold {best_t:.2f} -> recall {best.recall:.2f}, "
            f"precision {best.precision:.2f}, "
            f"{100 * best.work_coverage:.0f}% of interrupted work covered"
        )
    else:
        print("\nno threshold satisfies the alarm budget; raise it")
    print(
        "\nreading: precision is intrinsically low (interruptions are\n"
        "0.4% of jobs), but a small alarm budget still covers most of\n"
        "the at-risk *work* because risk concentrates after failures at\n"
        "specific locations (Obs. 6/7/9) and on wide jobs (Obs. 10)."
    )


if __name__ == "__main__":
    main()
