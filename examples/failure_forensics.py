#!/usr/bin/env python
"""Failure forensics: walk one fatal event from raw storm to verdict.

A demonstration of the §IV methodology on individual events rather than
aggregates — the workflow an Argonne admin would follow:

1. pick the fatal ERRCODE with the most raw records;
2. show its storm structure (records, locations, span);
3. show what temporal-spatial filtering keeps;
4. show the §IV-A case evidence and the §IV-B verdict with the rule
   that produced it;
5. list the jobs it interrupted and whether the job-related filter
   called any of its events redundant.

Also reproduces Figure 2's scenario detection: for each application
error type, it prints the executable-following pattern the classifier
saw.

Usage::

    python examples/failure_forensics.py [--scale 0.1] [--errcode CODE]
"""

import argparse
from collections import Counter

from repro.core import CoAnalysis
from repro.core.events import fatal_event_table
from repro.simulate import CalibrationProfile, IntrepidSimulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument("--errcode", default=None,
                        help="inspect this ERRCODE (default: busiest)")
    args = parser.parse_args()

    trace = IntrepidSimulation(
        CalibrationProfile(seed=args.seed, scale=args.scale)
    ).run()
    analysis = CoAnalysis()
    result = analysis.run(trace.ras_log, trace.job_log)

    raw = fatal_event_table(trace.ras_log)
    counts = Counter(raw.frame["errcode"])
    errcode = args.errcode or counts.most_common(1)[0][0]
    print("=" * 72)
    print(f"FORENSICS: {errcode}")
    print("=" * 72)

    # 1-2. raw storm anatomy
    mask = raw.frame.mask_eq("errcode", errcode)
    storm = raw.frame.filter(mask)
    span = storm["event_time"].max() - storm["event_time"].min()
    print(
        f"raw records: {storm.num_rows} across "
        f"{len(set(storm['location']))} locations over {span / 3600:.1f} h"
    )

    # 3. filtered representatives
    kept = result.events_filtered.frame
    kept_mask = kept.mask_eq("errcode", errcode)
    kept_n = int(kept_mask.sum())
    print(
        f"after temporal-spatial-causality filtering: {kept_n} events "
        f"({100 * (1 - kept_n / max(1, storm.num_rows)):.1f}% compressed)"
    )

    # 4. case evidence and verdict
    tc = result.match.type_cases
    row = None
    for r in tc.to_rows():
        if r["errcode"] == errcode:
            row = r
            break
    if row:
        print(
            f"case evidence: interrupts={row['case1']}, idle={row['case2']}, "
            f"running-unharmed={row['case3']}"
        )
    behavior = result.identification.behaviors.get(errcode)
    origin = result.classification.origins.get(errcode)
    rule = result.classification.rules.get(errcode)
    print(f"SIV-A identification: {behavior.value if behavior else 'n/a'}")
    print(
        f"SIV-B classification:  {origin.value if origin else 'n/a'}"
        f" (rule: {rule.value if rule else 'n/a'})"
    )

    # 5. interrupted jobs and redundancy
    pairs = result.match.pairs
    if pairs.num_rows:
        mine = pairs.filter(pairs.mask_eq("errcode", errcode))
        jobs = sorted(set(int(j) for j in mine["job_id"]))
        redundant = sorted(
            set(int(e) for e in mine["event_id"])
            & result.job_related_redundant_ids
        )
        print(f"interrupted jobs: {jobs[:12]}{' ...' if len(jobs) > 12 else ''}")
        print(f"events judged job-related-redundant: {len(redundant)}")

    # Figure 2 gallery for application errors
    print("\n" + "=" * 72)
    print("FIGURE 2 GALLERY: executable-following application errors")
    print("=" * 72)
    app_types = result.classification.application_types()
    if not app_types:
        print("(no application error types recovered at this scale)")
    for code in app_types:
        sub = pairs.filter(pairs.mask_eq("errcode", code))
        trails = {}
        for r in sub.to_rows():
            trails.setdefault(r["executable"], []).append(
                (r["event_time"], r["job_location"])
            )
        print(f"\n{code}:")
        shown = 0
        for exe, path in trails.items():
            if len(path) < 2 or shown >= 3:
                continue
            hops = " -> ".join(loc for _, loc in sorted(path))
            print(f"  {exe.split('/')[-1]} killed at {hops}")
            shown += 1
        if shown == 0:
            print("  (single-kill evidence only)")


if __name__ == "__main__":
    main()
