#!/usr/bin/env python
"""Scheduler what-if: does same-partition affinity amplify failures?

Observation 3/9: Intrepid's scheduler put 57.4% of resubmitted jobs back
on the partition that just killed them, feeding sticky breakages a
steady diet of victims. This experiment reruns the *same* workload and
fault environment under different affinity settings and measures:

* job interruptions and job-related redundant events,
* the category-1 resubmission risk at k = 1,
* wasted node-seconds in interrupted runs.

It is the §V (Discussion) "what should the scheduler do" question asked
quantitatively — the kind of study the released logs were meant to
enable.

Usage::

    python examples/scheduler_whatif.py [--scale 0.15]
"""

import argparse

from repro.core import CoAnalysis
from repro.simulate import CalibrationProfile, IntrepidSimulation
from dataclasses import replace


def run_once(affinity: float, scale: float, seed: int) -> dict:
    profile = CalibrationProfile(seed=seed, scale=scale, affinity=affinity)
    trace = IntrepidSimulation(profile).run()
    result = CoAnalysis().run(trace.ras_log, trace.job_log)
    frame = result.interruptions
    wasted = 0.0
    if frame.num_rows:
        wasted = float(
            (
                (frame["job_end"] - frame["job_start"])
                * frame["size_midplanes"]
            ).sum()
        )
    risk = result.vulnerability.risk_system
    return {
        "affinity": affinity,
        "interrupted_jobs": result.num_interrupted_jobs,
        "redundant_events": len(result.job_related_redundant_ids),
        "k1_risk": risk.probability(1),
        "k1_n": risk.counts[0][1],
        "wasted_mp_hours": wasted / 3600.0,
        "same_loc_share": result.same_location_resubmission_share,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--affinities", type=float, nargs="+",
        default=[0.0, 0.3, 0.65, 1.0],
    )
    args = parser.parse_args()

    print("=" * 76)
    print("SCHEDULER WHAT-IF: same-partition resubmission affinity sweep")
    print("=" * 76)
    header = (
        f"{'affinity':>9} {'same-loc%':>10} {'interrupts':>11} "
        f"{'jr-redundant':>13} {'P(fail|k=1)':>12} {'wasted mp-h':>12}"
    )
    print(header)
    rows = []
    for affinity in args.affinities:
        r = run_once(affinity, args.scale, args.seed)
        rows.append(r)
        print(
            f"{r['affinity']:>9.2f} {100 * r['same_loc_share']:>9.1f}% "
            f"{r['interrupted_jobs']:>11} {r['redundant_events']:>13} "
            f"{100 * r['k1_risk']:>10.1f}%  {r['wasted_mp_hours']:>11.0f}"
        )

    base, top = rows[0], rows[-1]
    print(
        "\nreading: pinning retries to the failed partition "
        f"(affinity {top['affinity']:.2f} vs {base['affinity']:.2f}) changes "
        f"job interruptions {base['interrupted_jobs']} -> "
        f"{top['interrupted_jobs']} and job-related redundancy "
        f"{base['redundant_events']} -> {top['redundant_events']}."
    )
    print(
        "A failure-aware scheduler (the paper's CiFTS direction, §VII)\n"
        "that avoids the last-failed partition removes exactly the\n"
        "temporal-propagation chains the job-related filter detects."
    )


if __name__ == "__main__":
    main()
