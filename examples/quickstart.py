#!/usr/bin/env python
"""Quickstart: simulate a scaled Intrepid trace and co-analyze it.

Runs in well under a minute. Scale 0.2 keeps the 237-day window but
shrinks volumes 5x; pass ``--scale 1.0`` for the full paper-sized trace
(~1 minute of simulation, ~2 GB peak memory).

Usage::

    python examples/quickstart.py [--scale 0.2] [--seed 2011]
"""

import argparse
import time

from repro.core import CoAnalysis
from repro.simulate import CalibrationProfile, IntrepidSimulation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=2011)
    args = parser.parse_args()

    print(f"simulating 237 days of Intrepid at scale {args.scale} ...")
    t0 = time.time()
    profile = CalibrationProfile(seed=args.seed, scale=args.scale)
    trace = IntrepidSimulation(profile).run()
    print(
        f"  {trace.job_log.num_jobs} jobs, {len(trace.ras_log)} RAS records"
        f" ({trace.num_fatal_records} FATAL) in {time.time() - t0:.1f}s"
    )

    print("running the co-analysis pipeline ...")
    t0 = time.time()
    result = CoAnalysis().run(trace.ras_log, trace.job_log)
    print(f"  done in {time.time() - t0:.1f}s\n")

    print(result.report())


if __name__ == "__main__":
    main()
