#!/usr/bin/env python
"""Checkpoint advisor: turn §VII's recommendations into policy.

The paper's discussion section derives checkpointing guidance from the
observations: application errors surface early (Obs. 11), so early
checkpoints of never-before-successful codes are wasted; system-failure
risk scales with job size (Obs. 10) and with the recency of the last
failure on the allocation (decreasing hazard, Table IV), so wide jobs
placed right after a failure deserve aggressive checkpointing.

This example computes, from an analyzed trace:

1. the empirical waste of checkpointing inside the first hour for codes
   with an application-error history;
2. a per-size recommended first-checkpoint time, using the fitted
   Weibull's conditional interruption probability and Young's
   approximation [13] on the category-1 MTTI.

Usage::

    python examples/checkpoint_advisor.py [--scale 0.2]
"""

import argparse
import math

import numpy as np

from repro.core import CoAnalysis
from repro.core.vulnerability import CATEGORY_APPLICATION
from repro.simulate import CalibrationProfile, IntrepidSimulation
from repro.workload.tables import SIZE_CLASSES


def young_interval(mtti_seconds: float, checkpoint_cost: float) -> float:
    """Young's first-order optimal checkpoint interval [13]."""
    return math.sqrt(2.0 * checkpoint_cost * mtti_seconds)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--checkpoint-cost", type=float, default=180.0,
        help="seconds to write one checkpoint (default: 3 minutes)",
    )
    args = parser.parse_args()

    trace = IntrepidSimulation(
        CalibrationProfile(seed=args.seed, scale=args.scale)
    ).run()
    result = CoAnalysis().run(trace.ras_log, trace.job_log)

    print("=" * 68)
    print("CHECKPOINT ADVISOR (from co-analysis observations)")
    print("=" * 68)

    # --- 1. early-checkpoint waste for app-error-prone codes ----------
    ints = result.interruptions
    app = ints.filter(ints.mask_eq("category", CATEGORY_APPLICATION))
    share = result.vulnerability.app_interruptions_first_hour_share
    print(
        f"\napplication errors observed: {app.num_rows}; "
        f"{100 * share:.1f}% died inside the first hour (paper: 74.5%)."
    )
    print(
        "-> for codes with an application-error history, defer the first\n"
        "   checkpoint past the first hour: a checkpoint taken before the\n"
        f"   bug fires is wasted in ~{100 * share:.0f}% of failing runs."
    )

    # --- 2. size-aware first-checkpoint schedule ----------------------
    if result.rates.system is None:
        print("\n(too few system interruptions at this scale for part 2)")
        return
    w = result.rates.system.weibull
    mtti = w.mean
    grid = result.vulnerability.grid
    by_size = grid.proportion_by_size()
    overall = max(grid.overall_proportion, 1e-9)

    print(
        f"\nfitted category-1 interruption Weibull: shape={w.shape:.3f}, "
        f"MTTI={mtti / 3600:.1f} h (decreasing hazard: {w.decreasing_hazard})"
    )
    print(f"\n{'size(mp)':>9} {'rel. risk':>10} {'eff. MTTI':>12} "
          f"{'Young interval':>15}")
    for i, size in enumerate(SIZE_CLASSES):
        if grid.totals[i].sum() == 0:
            continue
        rel = by_size[i] / overall if by_size[i] > 0 else 0.0
        if rel <= 0:
            print(f"{size:>9} {'~0':>10} {'-':>12} {'(skip)':>15}")
            continue
        eff_mtti = mtti / rel
        interval = young_interval(eff_mtti, args.checkpoint_cost)
        print(
            f"{size:>9} {rel:>9.1f}x {eff_mtti / 3600:>10.1f} h "
            f"{interval / 60:>11.0f} min"
        )
    print(
        "\n-> wider jobs fail proportionally more (Obs. 10): their optimal\n"
        "   checkpoint cadence is minutes, not hours, while midplane-scale\n"
        "   jobs can checkpoint hourly or rely on resubmission."
    )

    # --- 3. post-failure placement warning ----------------------------
    p_fresh = w.conditional_interruption_probability(0.0, 3600.0)
    p_aged = w.conditional_interruption_probability(86400.0, 3600.0)
    print(
        f"\nP(interrupt in next hour | failure just happened) = {p_fresh:.2%}\n"
        f"P(interrupt in next hour | quiet for a day)        = {p_aged:.2%}\n"
        "-> jobs placed immediately after a failure on the same hardware\n"
        "   should checkpoint immediately (Obs. 6/9's burst behaviour)."
    )


if __name__ == "__main__":
    main()
